"""Directory-based MSI coherence over objects.

§3.2 notes that cache coherence "requires additional message types, e.g.,
to ensure exclusive access to data, upgrade access type, invalidate
data" and points at TileLink as a minimal modern example.  This module
implements that vocabulary as a directory (home-node) MSI protocol at
object granularity:

* every object has a **home** host holding the directory entry and the
  authoritative copy;
* any host may **acquire** a Shared (read) or Modified (write) copy;
* the home serializes conflicting acquisitions per object, probing and
  invalidating remote copies as needed, collecting dirty data on the way.

The protocol rides on raw host-addressed packets (it provides its own
request/ack matching), so it can be layered over either transport.

The data plane is **batched at the packet boundary**: acquisitions for
many objects travel in one acquire packet (:meth:`CoherenceAgent.read_many`
for sequential-scan readers), the home coalesces grants completing at the
same instant into one multi-oid grant reply, and the probe/invalidate
fan-out of concurrent transactions coalesces per target into one
multi-entry probe round (answered by one batched ack, dirty writebacks
piggybacked per entry).

Caches are **capacity-bounded**: an agent constructed with
``capacity_bytes`` evicts least-recently-used entries when an insert
would exceed the bound.  Evicting a Modified line writes the data back
to the home (a fire-and-forget release); evicting a Shared line follows
the per-agent ``shared_evict_policy`` — ``notify`` releases the copy so
the directory forgets the sharer, ``silent_drop`` just drops it and lets
the directory discover the stale sharer on the next probe (the probe ack
answers "not present" and the home prunes instead of hanging).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..core.objectid import ObjectID
from ..sim import Future, ScheduledEvent, Simulator, Tracer
from ..net.host import Host
from ..net.packet import Packet
from .pool import SharedMemoryPool
from .messages import (
    COHERENCE_ENTRY_BYTES,
    MSG_ACQUIRE,
    MSG_GRANT,
    MSG_PROBE_ACK,
    MSG_PROBE_INVALIDATE,
    MSG_RELEASE,
    MSG_RELEASE_ACK,
    acquire_packet,
    grant_packet,
    probe_ack_packet,
    probe_packet,
    release_packet,
)

__all__ = [
    "CoherenceAgent",
    "CoherenceError",
    "PERM_SHARED",
    "PERM_MODIFIED",
    "EVICT_NOTIFY",
    "EVICT_SILENT_DROP",
]

PERM_SHARED = "S"
PERM_MODIFIED = "M"

# Shared-line eviction policies.
EVICT_NOTIFY = "notify"           # release so the directory drops the sharer
EVICT_SILENT_DROP = "silent_drop" # drop; the directory prunes on the next probe

_req_ids = itertools.count(1)


class CoherenceError(Exception):
    """Protocol violations: releasing an uncached object, bad perms..."""


class _CacheEntry:
    """One locally cached object copy."""

    __slots__ = ("data", "perm", "dirty")

    def __init__(self, data: bytearray, perm: str):
        self.data = data
        self.perm = perm
        self.dirty = False


class _DirectoryEntry:
    """Home-side record: authoritative data + current copy holders."""

    __slots__ = ("data", "sharers", "owner", "busy", "pending")

    def __init__(self, data: bytearray):
        self.data = data
        self.sharers: Set[str] = set()
        self.owner: Optional[str] = None  # holder of the Modified copy
        self.busy = False                 # a transaction is in flight
        self.pending: deque = deque()     # queued _Txn acquisitions


class _Txn:
    """One admitted acquisition the home is processing."""

    __slots__ = ("requester", "req_id", "perm", "upgrade", "home_local")

    def __init__(self, requester: str, req_id: int, perm: str,
                 upgrade: bool = False, home_local: bool = False):
        self.requester = requester
        self.req_id = req_id
        self.perm = perm
        self.upgrade = upgrade
        self.home_local = home_local


class CoherenceAgent:
    """One host's coherence participant: cache + (for home objects) directory.

    Usage from a simulated process::

        data = yield agent.read(oid, offset, length)
        yield agent.write(oid, offset, payload)
        chunks = yield agent.read_many(oids, offset, length)  # batched scan

    Reads acquire Shared permission; writes acquire Modified permission,
    invalidating every other copy first.  Repeated accesses hit the local
    cache with no network traffic — the hit/miss counters are what the
    coherence benchmarks read.
    """

    def __init__(self, host: Host, home_map: Dict[ObjectID, str],
                 tracer: Optional[Tracer] = None,
                 capacity_bytes: Optional[int] = None,
                 shared_evict_policy: str = EVICT_NOTIFY):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive (or None)")
        if shared_evict_policy not in (EVICT_NOTIFY, EVICT_SILENT_DROP):
            raise ValueError(
                f"unknown shared_evict_policy {shared_evict_policy!r}")
        self.host = host
        self.sim: Simulator = host.sim
        self.home_map = home_map
        self.tracer = tracer or Tracer()
        self.capacity_bytes = capacity_bytes
        self.shared_evict_policy = shared_evict_policy
        # LRU order: oldest entry first; hits move_to_end.
        self._cache: "OrderedDict[ObjectID, _CacheEntry]" = OrderedDict()
        self._cache_bytes = 0
        self._directory: Dict[ObjectID, _DirectoryEntry] = {}
        self._pending: Dict[int, Future] = {}
        # Capacity-eviction releases are fire-and-forget (no waiting
        # process), but a dirty eviction's data must stay reachable until
        # the home acks it: a probe racing the release finds the bytes
        # here and piggybacks them on the probe ack, so the home never
        # grants stale directory data.
        self._evicting: Dict[ObjectID, Tuple[int, bytes]] = {}
        self._evict_inflight: Dict[int, ObjectID] = {}
        host.on(MSG_ACQUIRE, self._on_acquire)
        host.on(MSG_GRANT, self._on_grant)
        host.on(MSG_PROBE_INVALIDATE, self._on_probe)
        host.on(MSG_PROBE_ACK, self._on_probe_ack)
        host.on(MSG_RELEASE, self._on_release)
        host.on(MSG_RELEASE_ACK, self._on_release_ack)
        # Home-side per-transaction scratch: (oid, req key) -> collection state.
        self._collect: Dict[Tuple[ObjectID, Tuple[str, int]], Dict[str, Any]] = {}
        # Same-instant coalescing buffers: probes per target, grants per
        # requester.  Flushed by a zero-delay event, so everything a
        # single arrival fans out to shares one wire packet per peer.
        self._probe_out: Dict[str, List[Dict[str, Any]]] = {}
        self._probe_flush: Dict[str, ScheduledEvent] = {}
        self._grant_out: Dict[str, List[Dict[str, Any]]] = {}
        self._grant_flush: Dict[str, ScheduledEvent] = {}
        # Upper layers (the proxy cache) that must hear about pushed
        # invalidations, so cached derivatives of our cache entries are
        # dropped the instant the protocol drops the entry itself.
        self._invalidation_listeners: List[Any] = []
        # Optional intra-rack shared-memory pool (see attach_pool): a
        # zero-copy read fast path consulted before the packet path.
        self._pool: Optional[SharedMemoryPool] = None

    def add_invalidation_listener(self, callback) -> None:
        """Call ``callback(oid)`` whenever a probe invalidates a cached
        copy on this host (the coherence-integrated invalidation hook
        the lazy-proxy layer registers through)."""
        self._invalidation_listeners.append(callback)

    # -- shared-memory pool fast path -----------------------------------------
    def attach_pool(self, pool: SharedMemoryPool) -> None:
        """Join the rack pool ``pool``: reads of pool-mapped objects are
        served as loads through the pool window instead of the batched
        acquire/grant packet path.  Only rack members may attach."""
        if not pool.attached(self.host.name):
            raise CoherenceError(
                f"{self.host.name} is not a member of pool {pool.name!r}")
        self._pool = pool

    def map_to_pool(self, oid: ObjectID) -> None:
        """Home-only: publish ``oid``'s authoritative bytes into the
        attached pool (zero-copy exchange for every rack member).

        Refused while a remote Modified copy is outstanding — the
        directory data would be stale.  The mapping is dropped again the
        instant any writer is granted Modified permission, so MSI state
        stays authoritative over the pool's snapshot."""
        if self._pool is None:
            raise CoherenceError(f"{self.host.name} has no attached pool")
        directory = self._home_directory(oid)
        if directory.owner is not None:
            raise CoherenceError(
                f"cannot pool-map {oid.short()} while {directory.owner} "
                f"holds a Modified copy")
        self._pool.map_object(oid, bytes(directory.data))

    def _pool_read(self, oid: ObjectID) -> bool:
        """True when a read of ``oid`` should go through the pool."""
        return self._pool is not None and self._pool.mapped(oid)

    def _pool_invalidate(self, oid: ObjectID) -> None:
        """Drop any pool mapping of ``oid`` before a write can land."""
        if self._pool is not None:
            self._pool.invalidate(oid)

    # -- object registration --------------------------------------------------
    def host_object(self, oid: ObjectID, data: bytes) -> None:
        """Declare this host the home of ``oid`` with initial ``data``."""
        if oid in self._directory:
            raise CoherenceError(f"{self.host.name} already home of {oid.short()}")
        self._directory[oid] = _DirectoryEntry(bytearray(data))
        self.home_map[oid] = self.host.name

    def _home_of(self, oid: ObjectID) -> str:
        home = self.home_map.get(oid)
        if home is None:
            raise CoherenceError(f"no home known for object {oid.short()}")
        return home

    def _home_directory(self, oid: ObjectID) -> _DirectoryEntry:
        """The local directory entry for ``oid``, or a clean fault.

        The home map can claim this host is home for an object that was
        never hosted here (stale map, typo'd registration); that must
        surface as a protocol error, not a raw ``KeyError``."""
        directory = self._directory.get(oid)
        if directory is None:
            raise CoherenceError(f"{self.host.name} is not home of {oid.short()}")
        return directory

    @staticmethod
    def _check_range(oid: ObjectID, size: int, offset: int, length: int) -> None:
        """Fault accesses outside the object's backing bytes.

        Slice assignment past the end of a ``bytearray`` silently grows
        it, so an unchecked store would resize the object instead of
        faulting like real memory."""
        if offset < 0 or length < 0 or offset + length > size:
            raise CoherenceError(
                f"range [{offset}:{offset + length}) out of bounds for "
                f"{oid.short()} ({size} bytes)")

    # -- capacity-bounded cache management ------------------------------------
    @property
    def cached_bytes(self) -> int:
        """Bytes of object data currently held in the local cache."""
        return self._cache_bytes

    def _touch(self, oid: ObjectID) -> None:
        """Mark ``oid`` most-recently-used (a cache hit)."""
        self._cache.move_to_end(oid)

    def _install(self, oid: ObjectID, entry: _CacheEntry) -> _CacheEntry:
        """Insert (or replace) a cache entry at MRU, then evict down to
        capacity — never evicting the entry just inserted, since callers
        go on to read or mutate it."""
        old = self._cache.pop(oid, None)
        if old is not None:
            self._cache_bytes -= len(old.data)
        self._cache[oid] = entry
        self._cache_bytes += len(entry.data)
        self._evict_to_capacity(keep=oid)
        return entry

    def _forget(self, oid: ObjectID) -> Optional[_CacheEntry]:
        """Drop ``oid`` from the cache (no protocol side effects)."""
        entry = self._cache.pop(oid, None)
        if entry is not None:
            self._cache_bytes -= len(entry.data)
        return entry

    def _evict_to_capacity(self, keep: Optional[ObjectID] = None) -> None:
        if self.capacity_bytes is None:
            return
        while self._cache_bytes > self.capacity_bytes:
            victim = next(iter(self._cache))
            if victim == keep:
                # ``keep`` sits at MRU, so it can only be the LRU head
                # when it is the sole entry: a single object larger than
                # the whole cache stays resident until the next insert.
                return
            self._evict_one(victim)

    def _evict_one(self, oid: ObjectID) -> None:
        entry = self._forget(oid)
        assert entry is not None
        for callback in self._invalidation_listeners:
            callback(oid)
        if entry.perm == PERM_MODIFIED:
            self.tracer.count("coherence.evict.modified")
            data: Optional[bytes] = None
            if entry.dirty:
                self.tracer.count("coherence.evict.writeback")
                data = bytes(entry.data)
            req_id = next(_req_ids)
            self._evict_inflight[req_id] = oid
            if data is not None:
                self._evicting[oid] = (req_id, data)
            self.host.send(release_packet(
                self.host.name, self._home_of(oid), oid, req_id,
                PERM_MODIFIED, data))
            return
        self.tracer.count("coherence.evict.shared")
        if self.shared_evict_policy == EVICT_NOTIFY:
            req_id = next(_req_ids)
            self._evict_inflight[req_id] = oid
            self.host.send(release_packet(
                self.host.name, self._home_of(oid), oid, req_id,
                PERM_SHARED, None))
        # silent_drop: say nothing — the directory keeps us as a sharer
        # until its next probe comes back "not present" and it prunes.

    # -- public operations (generator processes) -------------------------------
    def read(self, oid: ObjectID, offset: int, length: int):
        """Process: acquire Shared (if needed) and return the bytes."""
        entry = self._cache.get(oid)
        if entry is None and self._home_of(oid) == self.host.name:
            directory = self._home_directory(oid)
            self._check_range(oid, len(directory.data), offset, length)
            if directory.owner is not None:
                # A remote Modified copy exists: recall it before reading.
                yield from self._home_local_barrier(oid, PERM_SHARED)
            self.tracer.count("coherence.home_hit")
            return bytes(directory.data[offset : offset + length])
        if entry is not None:
            self.tracer.count("coherence.cache_hit")
            self._touch(oid)
            self._check_range(oid, len(entry.data), offset, length)
            return bytes(entry.data[offset : offset + length])
        if self._pool_read(oid):
            # Pool-mapped: one load through the rack pool, no packets.
            # No cache entry is installed (a load is a one-shot access,
            # not a cache fill), so we owe the directory nothing.
            self.tracer.count("coherence.pool_hit")
            chunk = yield from self._pool.load(oid, offset, length)
            return chunk
        self.tracer.count("coherence.read_miss")
        entry = yield from self._acquire(oid, PERM_SHARED)
        self._check_range(oid, len(entry.data), offset, length)
        return bytes(entry.data[offset : offset + length])

    def read_many(self, oids: Iterable[ObjectID], offset: int, length: int):
        """Process: read the same range of many objects, batching the
        acquisitions per home into single multi-oid packets.

        A sequential-scan reader over N uncached, conflict-free objects
        with one home costs one acquire packet and one grant packet,
        instead of N of each."""
        oids = list(oids)
        results: Dict[int, bytes] = {}
        by_home: Dict[str, List[Tuple[int, ObjectID, int, Future]]] = {}
        for index, oid in enumerate(oids):
            entry = self._cache.get(oid)
            if (entry is not None or self._home_of(oid) == self.host.name
                    or self._pool_read(oid)):
                # Cached, home-resident, or pool-mapped: the
                # single-object path already serves these without
                # acquire/grant traffic.
                results[index] = yield from self.read(oid, offset, length)
                continue
            self.tracer.count("coherence.read_miss")
            req_id = next(_req_ids)
            future = Future(self.sim, name=f"scan-{req_id}")
            self._pending[req_id] = future
            by_home.setdefault(self._home_of(oid), []).append(
                (index, oid, req_id, future))
        for home, wanted in by_home.items():
            reqs = [{"oid": oid, "req_id": req_id}
                    for _, oid, req_id, _ in wanted]
            self._send_acquire(home, PERM_SHARED, reqs)
        for home, wanted in by_home.items():
            for index, oid, _, future in wanted:
                granted = yield future
                entry = self._install(
                    oid, _CacheEntry(bytearray(granted["data"]), PERM_SHARED))
                self._check_range(oid, len(entry.data), offset, length)
                results[index] = bytes(entry.data[offset : offset + length])
        return [results[i] for i in range(len(oids))]

    def read_objects(self, oids: Iterable[ObjectID]):
        """Process: read the *full images* of many objects, batching the
        Shared acquisitions per home into single multi-oid packets.

        Unlike :meth:`read_many` this takes no range — object sizes vary
        and each grant carries the whole authoritative copy — which is
        what the lazy-proxy resolver needs: one batched acquisition per
        reachability-walk level, whatever the objects' sizes.  Returns
        ``{oid: bytes}`` (duplicates collapse to one entry).
        """
        results: Dict[ObjectID, bytes] = {}
        by_home: Dict[str, List[Tuple[ObjectID, int, Future]]] = {}
        for oid in oids:
            if oid in results:
                continue
            entry = self._cache.get(oid)
            if entry is not None:
                self.tracer.count("coherence.cache_hit")
                self._touch(oid)
                results[oid] = bytes(entry.data)
                continue
            if self._home_of(oid) == self.host.name:
                directory = self._home_directory(oid)
                if directory.owner is not None:
                    yield from self._home_local_barrier(oid, PERM_SHARED)
                self.tracer.count("coherence.home_hit")
                results[oid] = bytes(directory.data)
                continue
            if self._pool_read(oid):
                # The proxy resolver's fast path: the whole image comes
                # out of the rack pool in one load, no packets.
                self.tracer.count("coherence.pool_hit")
                results[oid] = yield from self._pool.load(oid)
                continue
            self.tracer.count("coherence.read_miss")
            req_id = next(_req_ids)
            future = Future(self.sim, name=f"bulk-{req_id}")
            self._pending[req_id] = future
            by_home.setdefault(self._home_of(oid), []).append(
                (oid, req_id, future))
        for home, wanted in by_home.items():
            reqs = [{"oid": oid, "req_id": req_id}
                    for oid, req_id, _ in wanted]
            self._send_acquire(home, PERM_SHARED, reqs)
        for home, wanted in by_home.items():
            for oid, _, future in wanted:
                granted = yield future
                entry = self._install(
                    oid, _CacheEntry(bytearray(granted["data"]), PERM_SHARED))
                results[oid] = bytes(entry.data)
        return results

    def write(self, oid: ObjectID, offset: int, data: bytes):
        """Process: acquire Modified (if needed) and apply the store."""
        home = self._home_of(oid)
        entry = self._cache.get(oid)
        if entry is not None and entry.perm == PERM_MODIFIED:
            self.tracer.count("coherence.cache_hit")
            self._touch(oid)
        elif entry is not None and entry.perm == PERM_SHARED and home != self.host.name:
            # §3.2's "upgrade access type": S -> M without re-shipping
            # the data we already hold (unless a concurrent writer
            # invalidated us while the upgrade was in flight).
            self.tracer.count("coherence.upgrade")
            entry = yield from self._upgrade(oid)
        elif home == self.host.name:
            # Home writes still invalidate remote copies first.
            directory = self._home_directory(oid)
            self._check_range(oid, len(directory.data), offset, len(data))
            yield from self._home_local_barrier(oid, PERM_MODIFIED)
            # A pool mapping would now serve stale bytes: drop it so
            # rack readers fall back to the (coherent) packet path.
            self._pool_invalidate(oid)
            directory.data[offset : offset + len(data)] = data
            self.tracer.count("coherence.home_write")
            return
        else:
            self.tracer.count("coherence.write_miss")
            entry = yield from self._acquire(oid, PERM_MODIFIED)
        self._check_range(oid, len(entry.data), offset, len(data))
        entry.data[offset : offset + len(data)] = data
        entry.dirty = True

    def writeback(self, oid: ObjectID):
        """Process: release a Modified copy back to the home (voluntary)."""
        entry = self._cache.get(oid)
        if entry is None:
            raise CoherenceError(f"{self.host.name} has no cached copy of {oid.short()}")
        req_id = next(_req_ids)
        future = Future(self.sim, name=f"release-{req_id}")
        self._pending[req_id] = future
        self.host.send(release_packet(
            self.host.name, self._home_of(oid), oid, req_id, entry.perm,
            bytes(entry.data) if entry.dirty else None))
        self._forget(oid)
        yield future

    def cached_perm(self, oid: ObjectID) -> Optional[str]:
        """The local cache permission for ``oid`` (S/M/None)."""
        entry = self._cache.get(oid)
        return entry.perm if entry else None

    def authoritative_data(self, oid: ObjectID) -> bytes:
        """Home-side accessor for tests/benchmarks."""
        directory = self._directory.get(oid)
        if directory is None:
            raise CoherenceError(f"{self.host.name} is not home of {oid.short()}")
        return bytes(directory.data)

    # -- requester side -----------------------------------------------------
    def _send_acquire(self, home: str, perm: str,
                      reqs: List[Dict[str, Any]]) -> None:
        self.tracer.count("coherence.batch.acquire_pkts")
        if len(reqs) > 1:
            self.tracer.count("coherence.batch.multi_acquire")
        self.host.send(acquire_packet(self.host.name, home, perm, reqs))

    def _acquire(self, oid: ObjectID, perm: str):
        req_id = next(_req_ids)
        future = Future(self.sim, name=f"acquire-{req_id}")
        self._pending[req_id] = future
        self._send_acquire(self._home_of(oid), perm,
                           [{"oid": oid, "req_id": req_id}])
        granted = yield future
        return self._install(oid, _CacheEntry(bytearray(granted["data"]), perm))

    def _upgrade(self, oid: ObjectID):
        """Process: request S -> M; the grant carries data only if our
        shared copy was invalidated while the request was in flight."""
        req_id = next(_req_ids)
        future = Future(self.sim, name=f"upgrade-{req_id}")
        self._pending[req_id] = future
        self._send_acquire(self._home_of(oid), PERM_MODIFIED,
                           [{"oid": oid, "req_id": req_id, "upgrade": True}])
        granted = yield future
        entry = self._cache.get(oid)
        if granted.get("data") is not None or entry is None:
            # We lost the copy mid-flight: the home shipped fresh data.
            entry = self._install(
                oid, _CacheEntry(bytearray(granted["data"]), PERM_MODIFIED))
        else:
            entry.perm = PERM_MODIFIED
            self._touch(oid)
        return entry

    def _home_local_barrier(self, oid: ObjectID, perm: str):
        """Recall/invalidate remote copies before a home-side access.

        Implemented by acquiring through our own directory via the same
        queued path remote requesters use, which keeps the serialization
        discipline in one place.  ``perm=S`` recalls an exclusive owner;
        ``perm=M`` also invalidates every sharer.
        """
        directory = self._home_directory(oid)
        if not directory.sharers and directory.owner is None:
            return
        req_id = next(_req_ids)
        future = Future(self.sim, name=f"homebarrier-{req_id}")
        self._pending[req_id] = future
        txn = _Txn(self.host.name, req_id, perm, home_local=True)
        self._admit(oid, directory, txn)
        yield future
        # The grant for a home-local barrier carries no data we need.
        self._forget(oid)

    def _on_grant(self, packet: Packet) -> None:
        for entry in packet.payload["grants"]:
            future = self._pending.pop(entry["req_id"], None)
            if future is None:
                self.tracer.count("coherence.orphan_grant")
                continue
            if entry.get("nack"):
                # The home refused: it never hosted this object (stale
                # home map).  Fault the waiting coroutine instead of
                # leaving it parked on the future forever.
                oid = entry["oid"]
                future.set_exception(CoherenceError(
                    f"acquire {entry['perm']} of {oid.short()} NACKed by "
                    f"{packet.src}: not the home (stale home map?)"))
                continue
            future.set_result(entry)

    def _on_release_ack(self, packet: Packet) -> None:
        req_id = packet.payload["req_id"]
        oid = self._evict_inflight.pop(req_id, None)
        if oid is not None:
            # A fire-and-forget eviction release completed: the home has
            # the data, so the race buffer can let go of it.
            pending = self._evicting.get(oid)
            if pending is not None and pending[0] == req_id:
                del self._evicting[oid]
            return
        future = self._pending.pop(req_id, None)
        if future is not None:
            future.set_result(None)

    # -- home / directory side ------------------------------------------------
    def _on_acquire(self, packet: Packet) -> None:
        perm = packet.payload["perm"]
        for req in packet.payload["reqs"]:
            oid = req["oid"]
            directory = self._directory.get(oid)
            if directory is None:
                # Not our object (stale home map at the requester).  A
                # silent drop would leave the requester's future pending
                # forever, so answer with a NACK grant entry instead.
                self.tracer.count("coherence.bad_home")
                self._queue_grant(packet.src, {
                    "req_id": req["req_id"],
                    "oid": oid,
                    "perm": perm,
                    "data": None,
                    "nack": True,
                })
                continue
            txn = _Txn(packet.src, req["req_id"], perm,
                       upgrade=bool(req.get("upgrade")))
            self._admit(oid, directory, txn)

    def _admit(self, oid: ObjectID, directory: _DirectoryEntry,
               txn: _Txn) -> None:
        if directory.busy:
            directory.pending.append(txn)
            return
        directory.busy = True
        self._start_transaction(oid, directory, txn)

    def _start_transaction(self, oid: ObjectID, directory: _DirectoryEntry,
                           txn: _Txn) -> None:
        requester = txn.requester
        perm = txn.perm
        # Who must be probed before this grant is legal?
        to_probe: Set[str] = set()
        if perm == PERM_MODIFIED:
            to_probe |= {s for s in directory.sharers if s != requester}
            if directory.owner and directory.owner != requester:
                to_probe.add(directory.owner)
        else:  # Shared: only an exclusive owner conflicts
            if directory.owner and directory.owner != requester:
                to_probe.add(directory.owner)
        if not to_probe:
            self._grant(oid, directory, txn)
            return
        # A Shared acquisition only needs the exclusive owner *downgraded*
        # to Shared (with writeback); Modified needs everyone at Invalid.
        downgrade_to = PERM_SHARED if perm == PERM_SHARED else "I"
        key = (requester, txn.req_id)
        self._collect[(oid, key)] = {"txn": txn, "waiting": set(to_probe),
                                     "downgrade_to": downgrade_to}
        for target in sorted(to_probe):
            self.tracer.count("coherence.probe")
            self._queue_probe(target, {"oid": oid, "req_key": list(key),
                                       "downgrade_to": downgrade_to})

    # -- probe fan-out batching ----------------------------------------------
    def _queue_probe(self, target: str, probe: Dict[str, Any]) -> None:
        self._probe_out.setdefault(target, []).append(probe)
        if target not in self._probe_flush:
            self._probe_flush[target] = self.sim.schedule(
                0.0, self._flush_probes, target)

    def _flush_probes(self, target: str) -> None:
        self._probe_flush.pop(target, None)
        probes = self._probe_out.pop(target, None)
        if not probes:
            return
        self.tracer.count("coherence.batch.probe_pkts")
        if len(probes) > 1:
            self.tracer.count("coherence.batch.multi_probe")
        self.host.send(probe_packet(self.host.name, target, probes))

    def _on_probe(self, packet: Packet) -> None:
        acks: List[Dict[str, Any]] = []
        for probe in packet.payload["probes"]:
            oid = probe["oid"]
            downgrade_to = probe.get("downgrade_to", "I")
            entry = self._cache.get(oid)
            ack: Dict[str, Any] = {"oid": oid, "req_key": probe["req_key"]}
            if entry is None:
                # The directory thinks we hold a copy but we already let
                # go of it (silent-drop eviction, or a release still in
                # flight).  Answer "not present" so the home prunes us;
                # if a dirty eviction's writeback is racing this probe,
                # piggyback its data so the home never grants stale bytes.
                ack["present"] = False
                racing = self._evicting.get(oid)
                if racing is not None:
                    ack["data"] = racing[1]
                acks.append(ack)
                continue
            if entry.dirty:
                ack["data"] = bytes(entry.data)
            if downgrade_to == PERM_SHARED:
                # M -> S: keep the (now clean) copy for future local reads.
                entry.perm = PERM_SHARED
                entry.dirty = False
                ack["kept_shared"] = True
                self.tracer.count("coherence.downgraded")
            else:
                self._forget(oid)
                self.tracer.count("coherence.invalidated")
                for callback in self._invalidation_listeners:
                    callback(oid)
            acks.append(ack)
        self.host.send(probe_ack_packet(self.host.name, packet.src, acks))

    def _on_probe_ack(self, packet: Packet) -> None:
        for ack in packet.payload["acks"]:
            oid = ack["oid"]
            key = tuple(ack["req_key"])
            state = self._collect.get((oid, key))
            if state is None:
                self.tracer.count("coherence.orphan_probe_ack")
                continue
            directory = self._directory[oid]
            if ack.get("present") is False:
                # The holder silently dropped (or is releasing) its copy:
                # prune the stale sharer/owner instead of hanging the
                # transaction waiting for an invalidation that already
                # happened.
                self.tracer.count("coherence.probe_stale")
            if "data" in ack:  # dirty writeback piggybacked on the ack
                directory.data[:] = ack["data"]
            if ack.get("kept_shared"):
                # The owner downgraded M -> S: it stays a sharer.
                directory.sharers.add(packet.src)
            else:
                directory.sharers.discard(packet.src)
            if directory.owner == packet.src:
                directory.owner = None
            state["waiting"].discard(packet.src)
            if not state["waiting"]:
                del self._collect[(oid, key)]
                self._grant(oid, directory, state["txn"])

    # -- grant coalescing -----------------------------------------------------
    def _grant(self, oid: ObjectID, directory: _DirectoryEntry,
               txn: _Txn) -> None:
        requester = txn.requester
        perm = txn.perm
        # An upgrade grant omits the data while the requester still holds
        # a valid shared copy; if an earlier transaction invalidated it,
        # ship fresh data (checked before we mutate the sharer set).
        upgrade_without_data = txn.upgrade and requester in directory.sharers
        if perm == PERM_MODIFIED:
            # MSI stays authoritative over the pool: the mapping is
            # dropped before any writer can touch the data, so a pool
            # load can never observe post-grant bytes.
            self._pool_invalidate(oid)
            directory.sharers.discard(requester)
            directory.owner = requester
        else:
            directory.sharers.add(requester)
        self.tracer.count("coherence.grant")
        if upgrade_without_data:
            self.tracer.count("coherence.upgrade_ack")
        entry = {
            "req_id": txn.req_id,
            "oid": oid,
            "perm": perm,
            "data": None if upgrade_without_data else bytes(directory.data),
        }
        if txn.home_local:
            # Local barrier: complete without touching the network.
            directory.owner = None
            directory.sharers.discard(self.host.name)
            future = self._pending.pop(txn.req_id, None)
            if future is not None:
                future.set_result(entry)
            self._finish_transaction(oid, directory)
            return
        self._queue_grant(requester, entry)
        self._finish_transaction(oid, directory)

    def _queue_grant(self, requester: str, entry: Dict[str, Any]) -> None:
        """Coalesce grants completing at the same instant toward the
        same requester into one multi-oid grant packet (the sequential
        scan's reply-side half)."""
        self._grant_out.setdefault(requester, []).append(entry)
        if requester not in self._grant_flush:
            self._grant_flush[requester] = self.sim.schedule(
                0.0, self._flush_grants, requester)

    def _flush_grants(self, requester: str) -> None:
        self._grant_flush.pop(requester, None)
        grants = self._grant_out.pop(requester, None)
        if not grants:
            return
        self.tracer.count("coherence.batch.grant_pkts")
        if len(grants) > 1:
            self.tracer.count("coherence.batch.multi_grant")
        self.host.send(grant_packet(self.host.name, requester, grants))

    def _finish_transaction(self, oid: ObjectID, directory: _DirectoryEntry) -> None:
        if directory.pending:
            next_txn = directory.pending.popleft()
            self._start_transaction(oid, directory, next_txn)
        else:
            directory.busy = False

    def _on_release(self, packet: Packet) -> None:
        oid = packet.oid
        assert oid is not None
        directory = self._directory.get(oid)
        if directory is None:
            self.tracer.count("coherence.bad_home")
            return
        if "data" in packet.payload and directory.owner in (None, packet.src):
            # Apply the writeback unless ownership has already moved on
            # (an eviction release racing a probe that re-granted M): the
            # new owner's copy supersedes these bytes.
            directory.data[:] = packet.payload["data"]
        directory.sharers.discard(packet.src)
        if directory.owner == packet.src:
            directory.owner = None
        self.host.send(Packet(
            kind=MSG_RELEASE_ACK, src=self.host.name, dst=packet.src, oid=oid,
            payload={"req_id": packet.payload["req_id"]},
            payload_bytes=COHERENCE_ENTRY_BYTES,
        ))
