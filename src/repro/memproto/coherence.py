"""Directory-based MSI coherence over objects.

§3.2 notes that cache coherence "requires additional message types, e.g.,
to ensure exclusive access to data, upgrade access type, invalidate
data" and points at TileLink as a minimal modern example.  This module
implements that vocabulary as a directory (home-node) MSI protocol at
object granularity:

* every object has a **home** host holding the directory entry and the
  authoritative copy;
* any host may **acquire** a Shared (read) or Modified (write) copy;
* the home serializes conflicting acquisitions per object, probing and
  invalidating remote copies as needed, collecting dirty data on the way.

The protocol rides on raw host-addressed packets (it provides its own
request/ack matching), so it can be layered over either transport.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Dict, Optional, Set, Tuple

from ..core.objectid import ObjectID
from ..sim import Future, Simulator, Tracer
from ..net.host import Host
from ..net.packet import Packet
from .messages import (
    MSG_ACQUIRE,
    MSG_GRANT,
    MSG_PROBE_ACK,
    MSG_PROBE_INVALIDATE,
    MSG_RELEASE,
    MSG_RELEASE_ACK,
)

__all__ = ["CoherenceAgent", "CoherenceError", "PERM_SHARED", "PERM_MODIFIED"]

PERM_SHARED = "S"
PERM_MODIFIED = "M"

_req_ids = itertools.count(1)


class CoherenceError(Exception):
    """Protocol violations: releasing an uncached object, bad perms..."""


class _CacheEntry:
    """One locally cached object copy."""

    __slots__ = ("data", "perm", "dirty")

    def __init__(self, data: bytearray, perm: str):
        self.data = data
        self.perm = perm
        self.dirty = False


class _DirectoryEntry:
    """Home-side record: authoritative data + current copy holders."""

    __slots__ = ("data", "sharers", "owner", "busy", "pending")

    def __init__(self, data: bytearray):
        self.data = data
        self.sharers: Set[str] = set()
        self.owner: Optional[str] = None  # holder of the Modified copy
        self.busy = False                 # a transaction is in flight
        self.pending: deque = deque()     # queued (packet) acquisitions


class CoherenceAgent:
    """One host's coherence participant: cache + (for home objects) directory.

    Usage from a simulated process::

        data = yield agent.read(oid, offset, length)
        yield agent.write(oid, offset, payload)

    Reads acquire Shared permission; writes acquire Modified permission,
    invalidating every other copy first.  Repeated accesses hit the local
    cache with no network traffic — the hit/miss counters are what the
    coherence benchmarks read.
    """

    def __init__(self, host: Host, home_map: Dict[ObjectID, str],
                 tracer: Optional[Tracer] = None):
        self.host = host
        self.sim: Simulator = host.sim
        self.home_map = home_map
        self.tracer = tracer or Tracer()
        self._cache: Dict[ObjectID, _CacheEntry] = {}
        self._directory: Dict[ObjectID, _DirectoryEntry] = {}
        self._pending: Dict[int, Future] = {}
        host.on(MSG_ACQUIRE, self._on_acquire)
        host.on(MSG_GRANT, self._on_grant)
        host.on(MSG_PROBE_INVALIDATE, self._on_probe)
        host.on(MSG_PROBE_ACK, self._on_probe_ack)
        host.on(MSG_RELEASE, self._on_release)
        host.on(MSG_RELEASE_ACK, self._on_release_ack)
        # Home-side per-transaction scratch: req key -> collection state.
        self._collect: Dict[Tuple[str, int], Dict[str, Any]] = {}

    # -- object registration --------------------------------------------------
    def host_object(self, oid: ObjectID, data: bytes) -> None:
        """Declare this host the home of ``oid`` with initial ``data``."""
        if oid in self._directory:
            raise CoherenceError(f"{self.host.name} already home of {oid.short()}")
        self._directory[oid] = _DirectoryEntry(bytearray(data))
        self.home_map[oid] = self.host.name

    def _home_of(self, oid: ObjectID) -> str:
        home = self.home_map.get(oid)
        if home is None:
            raise CoherenceError(f"no home known for object {oid.short()}")
        return home

    # -- public operations (generator processes) -------------------------------
    def read(self, oid: ObjectID, offset: int, length: int):
        """Process: acquire Shared (if needed) and return the bytes."""
        entry = self._cache.get(oid)
        if entry is None and self._home_of(oid) == self.host.name:
            directory = self._directory[oid]
            if directory.owner is not None:
                # A remote Modified copy exists: recall it before reading.
                yield from self._home_local_barrier(oid, PERM_SHARED)
            self.tracer.count("coherence.home_hit")
            return bytes(directory.data[offset : offset + length])
        if entry is not None:
            self.tracer.count("coherence.cache_hit")
            return bytes(entry.data[offset : offset + length])
        self.tracer.count("coherence.read_miss")
        entry = yield from self._acquire(oid, PERM_SHARED)
        return bytes(entry.data[offset : offset + length])

    def write(self, oid: ObjectID, offset: int, data: bytes):
        """Process: acquire Modified (if needed) and apply the store."""
        home = self._home_of(oid)
        entry = self._cache.get(oid)
        if entry is not None and entry.perm == PERM_MODIFIED:
            self.tracer.count("coherence.cache_hit")
        elif entry is not None and entry.perm == PERM_SHARED and home != self.host.name:
            # §3.2's "upgrade access type": S -> M without re-shipping
            # the data we already hold (unless a concurrent writer
            # invalidated us while the upgrade was in flight).
            self.tracer.count("coherence.upgrade")
            entry = yield from self._upgrade(oid)
        elif home == self.host.name:
            # Home writes still invalidate remote copies first.
            yield from self._home_local_barrier(oid, PERM_MODIFIED)
            directory = self._directory[oid]
            directory.data[offset : offset + len(data)] = data
            self.tracer.count("coherence.home_write")
            return
        else:
            self.tracer.count("coherence.write_miss")
            entry = yield from self._acquire(oid, PERM_MODIFIED)
        entry.data[offset : offset + len(data)] = data
        entry.dirty = True

    def writeback(self, oid: ObjectID):
        """Process: release a Modified copy back to the home (voluntary)."""
        entry = self._cache.get(oid)
        if entry is None:
            raise CoherenceError(f"{self.host.name} has no cached copy of {oid.short()}")
        req_id = next(_req_ids)
        future = Future(self.sim, name=f"release-{req_id}")
        self._pending[req_id] = future
        payload: Dict[str, Any] = {"req_id": req_id, "perm": entry.perm}
        payload_bytes = 16
        if entry.dirty:
            payload["data"] = bytes(entry.data)
            payload_bytes += len(entry.data)
        self.host.send(Packet(
            kind=MSG_RELEASE, src=self.host.name, dst=self._home_of(oid),
            oid=oid, payload=payload, payload_bytes=payload_bytes,
        ))
        del self._cache[oid]
        yield future

    def cached_perm(self, oid: ObjectID) -> Optional[str]:
        """The local cache permission for ``oid`` (S/M/None)."""
        entry = self._cache.get(oid)
        return entry.perm if entry else None

    def authoritative_data(self, oid: ObjectID) -> bytes:
        """Home-side accessor for tests/benchmarks."""
        directory = self._directory.get(oid)
        if directory is None:
            raise CoherenceError(f"{self.host.name} is not home of {oid.short()}")
        return bytes(directory.data)

    # -- requester side -----------------------------------------------------
    def _acquire(self, oid: ObjectID, perm: str):
        req_id = next(_req_ids)
        future = Future(self.sim, name=f"acquire-{req_id}")
        self._pending[req_id] = future
        self.host.send(Packet(
            kind=MSG_ACQUIRE, src=self.host.name, dst=self._home_of(oid),
            oid=oid, payload={"req_id": req_id, "perm": perm}, payload_bytes=16,
        ))
        granted = yield future
        entry = _CacheEntry(bytearray(granted["data"]), perm)
        self._cache[oid] = entry
        return entry

    def _upgrade(self, oid: ObjectID):
        """Process: request S -> M; the grant carries data only if our
        shared copy was invalidated while the request was in flight."""
        req_id = next(_req_ids)
        future = Future(self.sim, name=f"upgrade-{req_id}")
        self._pending[req_id] = future
        self.host.send(Packet(
            kind=MSG_ACQUIRE, src=self.host.name, dst=self._home_of(oid),
            oid=oid,
            payload={"req_id": req_id, "perm": PERM_MODIFIED, "upgrade": True},
            payload_bytes=16,
        ))
        granted = yield future
        entry = self._cache.get(oid)
        if granted.get("data") is not None or entry is None:
            # We lost the copy mid-flight: the home shipped fresh data.
            entry = _CacheEntry(bytearray(granted["data"]), PERM_MODIFIED)
            self._cache[oid] = entry
        else:
            entry.perm = PERM_MODIFIED
        return entry

    def _home_local_barrier(self, oid: ObjectID, perm: str):
        """Recall/invalidate remote copies before a home-side access.

        Implemented by acquiring through our own directory via the same
        queued path remote requesters use, which keeps the serialization
        discipline in one place.  ``perm=S`` recalls an exclusive owner;
        ``perm=M`` also invalidates every sharer.
        """
        directory = self._directory[oid]
        if not directory.sharers and directory.owner is None:
            return
        req_id = next(_req_ids)
        future = Future(self.sim, name=f"homebarrier-{req_id}")
        self._pending[req_id] = future
        # Loop the request through our own handler as a local packet.
        packet = Packet(
            kind=MSG_ACQUIRE, src=self.host.name, dst=self.host.name,
            oid=oid, payload={"req_id": req_id, "perm": perm,
                              "home_local": True},
            payload_bytes=0,
        )
        self._on_acquire(packet)
        yield future
        # The grant for a home-local barrier carries no data we need.
        self._cache.pop(oid, None)

    def _on_grant(self, packet: Packet) -> None:
        future = self._pending.pop(packet.payload["req_id"], None)
        if future is None:
            self.tracer.count("coherence.orphan_grant")
            return
        future.set_result(packet.payload)

    def _on_release_ack(self, packet: Packet) -> None:
        future = self._pending.pop(packet.payload["req_id"], None)
        if future is not None:
            future.set_result(None)

    # -- home / directory side ------------------------------------------------
    def _on_acquire(self, packet: Packet) -> None:
        oid = packet.oid
        assert oid is not None
        directory = self._directory.get(oid)
        if directory is None:
            self.tracer.count("coherence.bad_home")
            return
        if directory.busy:
            directory.pending.append(packet)
            return
        directory.busy = True
        self._start_transaction(oid, directory, packet)

    def _start_transaction(self, oid: ObjectID, directory: _DirectoryEntry,
                           packet: Packet) -> None:
        requester = packet.src
        perm = packet.payload["perm"]
        # Who must be probed before this grant is legal?
        to_probe: Set[str] = set()
        if perm == PERM_MODIFIED:
            to_probe |= {s for s in directory.sharers if s != requester}
            if directory.owner and directory.owner != requester:
                to_probe.add(directory.owner)
        else:  # Shared: only an exclusive owner conflicts
            if directory.owner and directory.owner != requester:
                to_probe.add(directory.owner)
        if not to_probe:
            self._grant(oid, directory, packet)
            return
        # A Shared acquisition only needs the exclusive owner *downgraded*
        # to Shared (with writeback); Modified needs everyone at Invalid.
        downgrade_to = PERM_SHARED if perm == PERM_SHARED else "I"
        key = (requester, packet.payload["req_id"])
        self._collect[key] = {"packet": packet, "waiting": set(to_probe),
                              "downgrade_to": downgrade_to}
        for target in to_probe:
            self.tracer.count("coherence.probe")
            self.host.send(Packet(
                kind=MSG_PROBE_INVALIDATE, src=self.host.name, dst=target,
                oid=oid,
                payload={"req_key": list(key), "downgrade_to": downgrade_to},
                payload_bytes=16,
            ))

    def _on_probe(self, packet: Packet) -> None:
        oid = packet.oid
        assert oid is not None
        downgrade_to = packet.payload.get("downgrade_to", "I")
        entry = self._cache.get(oid)
        payload: Dict[str, Any] = {"req_key": packet.payload["req_key"]}
        payload_bytes = 16
        if entry is not None and entry.dirty:
            payload["data"] = bytes(entry.data)
            payload_bytes += len(entry.data)
        if downgrade_to == PERM_SHARED and entry is not None:
            # M -> S: keep the (now clean) copy for future local reads.
            entry.perm = PERM_SHARED
            entry.dirty = False
            payload["kept_shared"] = True
            self.tracer.count("coherence.downgraded")
        else:
            self._cache.pop(oid, None)
            self.tracer.count("coherence.invalidated")
        self.host.send(Packet(
            kind=MSG_PROBE_ACK, src=self.host.name, dst=packet.src,
            oid=oid, payload=payload, payload_bytes=payload_bytes,
        ))

    def _on_probe_ack(self, packet: Packet) -> None:
        oid = packet.oid
        assert oid is not None
        key = tuple(packet.payload["req_key"])
        state = self._collect.get(key)
        if state is None:
            self.tracer.count("coherence.orphan_probe_ack")
            return
        directory = self._directory[oid]
        if "data" in packet.payload:  # dirty writeback piggybacked on the ack
            directory.data[:] = packet.payload["data"]
        if packet.payload.get("kept_shared"):
            # The owner downgraded M -> S: it stays a sharer.
            directory.sharers.add(packet.src)
        else:
            directory.sharers.discard(packet.src)
        if directory.owner == packet.src:
            directory.owner = None
        state["waiting"].discard(packet.src)
        if not state["waiting"]:
            del self._collect[key]
            self._grant(oid, directory, state["packet"])

    def _grant(self, oid: ObjectID, directory: _DirectoryEntry,
               packet: Packet) -> None:
        requester = packet.src
        perm = packet.payload["perm"]
        # An upgrade grant omits the data while the requester still holds
        # a valid shared copy; if an earlier transaction invalidated it,
        # ship fresh data (checked before we mutate the sharer set).
        upgrade_without_data = (packet.payload.get("upgrade")
                                and requester in directory.sharers)
        if perm == PERM_MODIFIED:
            directory.sharers.discard(requester)
            directory.owner = requester
        else:
            directory.sharers.add(requester)
        self.tracer.count("coherence.grant")
        if upgrade_without_data:
            self.tracer.count("coherence.upgrade_ack")
        grant_payload = {
            "req_id": packet.payload["req_id"],
            "perm": perm,
            "data": None if upgrade_without_data else bytes(directory.data),
        }
        if packet.payload.get("home_local"):
            # Local barrier: complete without touching the network.
            directory.owner = None
            directory.sharers.discard(self.host.name)
            future = self._pending.pop(packet.payload["req_id"], None)
            if future is not None:
                future.set_result(grant_payload)
            self._finish_transaction(oid, directory)
            return
        data_bytes = 0 if upgrade_without_data else len(directory.data)
        self.host.send(Packet(
            kind=MSG_GRANT, src=self.host.name, dst=requester, oid=oid,
            payload=grant_payload, payload_bytes=16 + data_bytes,
        ))
        self._finish_transaction(oid, directory)

    def _finish_transaction(self, oid: ObjectID, directory: _DirectoryEntry) -> None:
        if directory.pending:
            next_packet = directory.pending.popleft()
            self._start_transaction(oid, directory, next_packet)
        else:
            directory.busy = False

    def _on_release(self, packet: Packet) -> None:
        oid = packet.oid
        assert oid is not None
        directory = self._directory.get(oid)
        if directory is None:
            self.tracer.count("coherence.bad_home")
            return
        if "data" in packet.payload:
            directory.data[:] = packet.payload["data"]
        directory.sharers.discard(packet.src)
        if directory.owner == packet.src:
            directory.owner = None
        self.host.send(Packet(
            kind=MSG_RELEASE_ACK, src=self.host.name, dst=packet.src, oid=oid,
            payload={"req_id": packet.payload["req_id"]}, payload_bytes=16,
        ))
