"""Memory protocol: the bus-like message vocabulary, reliable transports,
and directory MSI coherence (Shared acquisitions downgrade an exclusive
owner M->S with writeback; Modified acquisitions invalidate)."""

from .coherence import (
    EVICT_NOTIFY,
    EVICT_SILENT_DROP,
    PERM_MODIFIED,
    PERM_SHARED,
    CoherenceAgent,
    CoherenceError,
)
from .messages import (
    CACHE_LINE_BYTES,
    MSG_ACQUIRE,
    MSG_GRANT,
    MSG_PROBE_ACK,
    MSG_PROBE_INVALIDATE,
    MSG_READ_REQ,
    MSG_READ_RSP,
    MSG_RELEASE,
    MSG_RELEASE_ACK,
    MSG_UPGRADE_ACK,
    MSG_UPGRADE_REQ,
    MSG_WRITE_ACK,
    MSG_WRITE_REQ,
    read_request,
    read_response,
    write_ack,
    write_request,
)
from .pool import (
    POOL_BANDWIDTH_GBPS,
    PoolCapacityError,
    PoolError,
    SharedMemoryPool,
)
from .resolve import CoherentProxyResolver
from .transport import LightweightTransport, TcpLikeTransport, TransportError

__all__ = [
    "CACHE_LINE_BYTES",
    "MSG_READ_REQ",
    "MSG_READ_RSP",
    "MSG_WRITE_REQ",
    "MSG_WRITE_ACK",
    "MSG_ACQUIRE",
    "MSG_GRANT",
    "MSG_PROBE_INVALIDATE",
    "MSG_PROBE_ACK",
    "MSG_RELEASE",
    "MSG_RELEASE_ACK",
    "MSG_UPGRADE_REQ",
    "MSG_UPGRADE_ACK",
    "read_request",
    "read_response",
    "write_request",
    "write_ack",
    "LightweightTransport",
    "TcpLikeTransport",
    "TransportError",
    "CoherenceAgent",
    "CoherenceError",
    "CoherentProxyResolver",
    "PERM_SHARED",
    "PERM_MODIFIED",
    "EVICT_NOTIFY",
    "EVICT_SILENT_DROP",
    "SharedMemoryPool",
    "PoolError",
    "PoolCapacityError",
    "POOL_BANDWIDTH_GBPS",
]
