"""CXL-style intra-rack shared-memory pools.

The paper's latency hierarchy (§1) makes remote memory ~100x slower
than DRAM but ~100x faster than SSD; the modern hardware endpoint of
that argument is a rack-level memory pool where moving an object is a
load/store, not a packet.  :class:`SharedMemoryPool` models one such
pool: a capacity-bounded device a set of rack-mate hosts attach to, with
a latency model **distinct from the packet path** — an access costs one
``LatencyHierarchy.remote_memory_us`` far-memory latency plus streaming
at the pool port rate, and never touches a link, a switch, or a
transport window.

Objects enter the pool by **mapping**: the home of an object publishes
its authoritative bytes into pool memory, after which any attached host
reads them with a single load (no acquire/grant round trip, no
serialization walk, no per-reader staging copy — the zero-copy fast
path the coherence agent and proxy resolver consult before falling back
to the batched packet transport).  Mapping is an explicit capacity
reservation: the pool accounts every byte reserved and released, evicts
least-recently-used mappings under pressure, and raises the typed
:class:`PoolCapacityError` for an object that cannot fit at all —
readers of an evicted mapping simply fall back to the packet path.

MSI state stays authoritative.  Pool readers hold no copy afterwards
(a load is a one-shot access, not a cache fill), so they owe the
directory nothing; the home invalidates the mapping the instant any
writer is granted Modified permission, so a mapped object honors
probes/invalidations exactly like every other copy — see
:meth:`CoherenceAgent.map_to_pool`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import FrozenSet, Iterable, Optional

from ..core.costmodel import DEFAULT_HIERARCHY, LatencyHierarchy
from ..core.objectid import ObjectID
from ..sim import Simulator, Timeout, Tracer

__all__ = [
    "SharedMemoryPool",
    "PoolError",
    "PoolCapacityError",
    "POOL_BANDWIDTH_GBPS",
]

#: Default effective streaming rate of synchronous load/store through
#: one pool port.  Deliberately far below NIC line rate: pool accesses
#: are CPU loads against far memory and do not pipeline like DMA, which
#: is exactly why a size crossover against the packet path exists
#: (matches ``CostModel.pool_bandwidth_gbps``).
POOL_BANDWIDTH_GBPS = 2.0


class PoolError(Exception):
    """Pool misuse: loading an unmapped object, double-mapping, bad range."""


class PoolCapacityError(PoolError):
    """A mapping cannot fit: the object is larger than the whole pool."""


class SharedMemoryPool:
    """One intra-rack shared-memory pool a group of hosts attaches to.

    Usage from a simulated process::

        pool.map_object(oid, data)          # home publishes (control plane)
        chunk = yield from pool.load(oid, offset, length)
        yield from pool.store(oid, offset, data)

    ``members`` names the hosts in the rack; only they may be attached
    by a :class:`~repro.memproto.coherence.CoherenceAgent`.  Capacity
    accounting is exact: ``reserved_bytes`` always equals
    ``pool.map_bytes - pool.release_bytes`` over the tracer counters,
    the invariant the ``pool.crossover`` benchmark asserts in-run.
    """

    def __init__(self, sim: Simulator, name: str, members: Iterable[str],
                 capacity_bytes: int,
                 hierarchy: LatencyHierarchy = DEFAULT_HIERARCHY,
                 bandwidth_gbps: float = POOL_BANDWIDTH_GBPS,
                 tracer: Optional[Tracer] = None):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.members: FrozenSet[str] = frozenset(members)
        if not self.members:
            raise ValueError("a pool needs at least one member host")
        self.capacity_bytes = int(capacity_bytes)
        self.hierarchy = hierarchy
        self.bandwidth_gbps = bandwidth_gbps
        self._bytes_per_us = bandwidth_gbps * 1e9 / 8 / 1e6
        self.tracer = tracer if tracer is not None else Tracer()
        # LRU order: oldest mapping first; loads move_to_end.
        self._mapped: "OrderedDict[ObjectID, bytearray]" = OrderedDict()
        self.reserved_bytes = 0

    # -- membership -----------------------------------------------------------
    def attached(self, host_name: str) -> bool:
        """True when ``host_name`` is a rack member of this pool."""
        return host_name in self.members

    # -- latency model --------------------------------------------------------
    def access_us(self, nbytes: int) -> float:
        """Simulated time of one pool access moving ``nbytes``: a single
        far-memory latency plus port-rate streaming — no packet costs."""
        return self.hierarchy.remote_memory_us + nbytes / self._bytes_per_us

    # -- mapping (control plane, capacity accounting) -------------------------
    def mapped(self, oid: ObjectID) -> bool:
        """True when ``oid`` currently has a pool mapping."""
        return oid in self._mapped

    def mapped_count(self) -> int:
        """How many objects are currently mapped."""
        return len(self._mapped)

    def object_size(self, oid: ObjectID) -> int:
        """Mapped size of ``oid`` in bytes; raises when unmapped."""
        entry = self._mapped.get(oid)
        if entry is None:
            raise PoolError(f"object {oid.short()} is not mapped in pool "
                            f"{self.name!r}")
        return len(entry)

    def map_object(self, oid: ObjectID, data: bytes) -> None:
        """Reserve capacity for ``oid`` and publish ``data`` into it.

        Evicts least-recently-used mappings to make room (their readers
        fall back to the packet path); an object larger than the whole
        pool raises :class:`PoolCapacityError` without evicting anyone.
        """
        if oid in self._mapped:
            raise PoolError(f"object {oid.short()} already mapped in pool "
                            f"{self.name!r}")
        nbytes = len(data)
        if nbytes > self.capacity_bytes:
            raise PoolCapacityError(
                f"object {oid.short()} ({nbytes} bytes) exceeds pool "
                f"{self.name!r} capacity ({self.capacity_bytes} bytes)")
        while self.reserved_bytes + nbytes > self.capacity_bytes:
            self._evict_one()
        self._mapped[oid] = bytearray(data)
        self.reserved_bytes += nbytes
        self.tracer.count("pool.map")
        self.tracer.count("pool.map_bytes", nbytes)

    def _release(self, oid: ObjectID) -> int:
        entry = self._mapped.pop(oid)
        nbytes = len(entry)
        self.reserved_bytes -= nbytes
        self.tracer.count("pool.release_bytes", nbytes)
        return nbytes

    def _evict_one(self) -> None:
        victim = next(iter(self._mapped))
        self._release(victim)
        self.tracer.count("pool.evict")

    def unmap(self, oid: ObjectID) -> bool:
        """Drop ``oid``'s mapping, freeing its reservation; False when it
        was not mapped (an eviction already freed it)."""
        if oid not in self._mapped:
            return False
        self._release(oid)
        self.tracer.count("pool.unmap")
        return True

    def invalidate(self, oid: ObjectID) -> bool:
        """Coherence push: drop ``oid``'s mapping because a writer was
        granted Modified permission.  Same accounting as :meth:`unmap`,
        counted separately so the MSI-driven drops are visible."""
        if oid not in self._mapped:
            return False
        self._release(oid)
        self.tracer.count("pool.invalidate")
        return True

    # -- data plane (simulated processes) -------------------------------------
    def _entry(self, oid: ObjectID, offset: int, length: int) -> bytearray:
        entry = self._mapped.get(oid)
        if entry is None:
            raise PoolError(f"object {oid.short()} is not mapped in pool "
                            f"{self.name!r}")
        if offset < 0 or length < 0 or offset + length > len(entry):
            raise PoolError(
                f"range [{offset}:{offset + length}) out of bounds for "
                f"pool-mapped {oid.short()} ({len(entry)} bytes)")
        self._mapped.move_to_end(oid)
        return entry

    def load(self, oid: ObjectID, offset: int = 0,
             length: Optional[int] = None):
        """Process: read ``length`` bytes of ``oid`` (whole object when
        ``length`` is None) through the pool window.

        The access linearizes at issue: the bytes returned are the
        mapping's content when the load started, so a concurrent
        invalidation (which always precedes the writer's first store)
        can never surface post-write data here.
        """
        if length is None:
            length = self.object_size(oid) - offset
        entry = self._entry(oid, offset, length)
        data = bytes(entry[offset:offset + length])
        self.tracer.count("pool.load")
        self.tracer.count("pool.load_bytes", length)
        yield Timeout(self.access_us(length))
        return data

    def store(self, oid: ObjectID, offset: int, data: bytes):
        """Process: write ``data`` into the mapped bytes of ``oid``.

        A raw device operation — coherent writes go through the MSI
        protocol (which invalidates the mapping first); this exists for
        pool-native workloads and the accounting tests.
        """
        entry = self._entry(oid, offset, len(data))
        self.tracer.count("pool.store")
        self.tracer.count("pool.store_bytes", len(data))
        yield Timeout(self.access_us(len(data)))
        entry[offset:offset + len(data)] = data
        return True

    def __repr__(self) -> str:
        return (f"<SharedMemoryPool {self.name} {len(self._mapped)} mapped "
                f"{self.reserved_bytes}/{self.capacity_bytes}B>")
