"""Reliable transports for memory messages.

§3.2 argues that Ethernet alone lacks reliability while TCP drags along
machinery (slow start, connection setup) that memory traffic does not
want: "there will need to be a new, light-weight form of reliable
transmission, separated from the other features provided by TCP."

Two transports implement the comparison for experiment E9:

* :class:`LightweightTransport` — the paper's proposal: per-peer
  sequence numbers, a fixed send window, per-frame retransmit timers,
  receiver-side duplicate suppression.  No handshake, no slow start.
* :class:`TcpLikeTransport` — the incumbent baseline: a 1-RTT handshake
  per peer, slow-start congestion window growth from 1 segment, and
  timeout-triggered window collapse (Tahoe-style).

Both deliver each message exactly once, in order, to the registered
upper-layer handler, and both record per-message delivery latency.

The data plane is **frame-batched**: messages queued toward the same
peer coalesce into a single MTU-bounded frame (one sequence number, one
header, one ack) instead of each message riding its own wire packet.
The flush deadline defaults to zero simulated time — everything sent at
the same instant shares a frame, and a latency-sensitive single still
departs at the instant it was sent.  Acks are **cumulative** (one ack
covers every frame up to it) and **piggyback** on reverse-direction
data frames; a delayed-ack timer is the fallback when no reverse data
shows up, and every ``ack_every``-th pending frame forces one out so a
one-way stream never stalls on the timer.

Loss recovery keeps the batched window from degenerating into
go-back-N: acks carry a bounded **selective-ack block** naming the
frames buffered past a hole (their timers stop, the window reopens),
duplicate acks trigger a **fast retransmit** of the hole itself after
``dupack_threshold`` repeats, and NewReno-style partial acks repair the
next hole per RTT while inside a loss window.  The RTO remains the
backstop for tail losses and lost repairs.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..sim import ScheduledEvent, Simulator, Tracer
from ..net.host import MTU_BYTES, Host
from ..net.packet import HEADER_BYTES, Packet

__all__ = ["LightweightTransport", "TcpLikeTransport", "TransportError"]

DeliveryHandler = Callable[[str, Dict[str, Any], int], None]
# handler(src_host, payload, payload_bytes)

_FRAME_HEADER_BYTES = 12  # seq + epoch + cumulative-ack field + flags
_MSG_HEADER_BYTES = 2     # per-message length field inside a frame
_ACK_BYTES = 12


class TransportError(Exception):
    """Raised on transport misuse (unknown peer state, bad handler)."""


class _PeerTx:
    """Per-destination sender state shared by both transports."""

    def __init__(self) -> None:
        self.next_seq = 0
        self.epoch = 0
        self.inflight: Dict[int, Tuple[Packet, ScheduledEvent]] = {}
        self.backlog: Deque[Packet] = deque()
        self.send_times: Dict[int, float] = {}   # seq -> first transmission
        self.queued_at: Dict[int, float] = {}    # seq -> backlog entry time
        self.attempts: Dict[int, int] = {}
        # Messages awaiting framing: (payload, payload_bytes) pairs plus
        # the modelled bytes they will occupy inside a frame.
        self.coalesce: List[Tuple[Dict[str, Any], int]] = []
        self.coalesce_bytes = 0
        self.flush_event: Optional[ScheduledEvent] = None
        self.dup_acks = 0      # no-progress acks since the last cum advance
        self.fast_done = -1    # last hole fast-retransmitted (once per hole)
        self.recover = -1      # highest seq outstanding when loss was seen


class _PeerRx:
    """Per-source receiver state: exactly-once, in-order delivery."""

    def __init__(self) -> None:
        self.expected_seq = 0
        self.epoch = 0
        self.out_of_order: Dict[int, Packet] = {}
        self.ack_owed = 0  # frames heard since the last ack we emitted
        self.ack_event: Optional[ScheduledEvent] = None


class _TransportBase:
    """Common machinery: framing, acks, retransmission, reordering."""

    def __init__(
        self,
        host: Host,
        rto_us: float = 200.0,
        data_kind: str = "rt.data",
        ack_kind: str = "rt.ack",
        max_retransmits: int = 30,
        flush_us: float = 0.0,
        delayed_ack_us: float = 50.0,
        ack_every: int = 2,
        reorder_window: int = 256,
        dupack_threshold: int = 2,
        mtu_bytes: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ):
        if rto_us <= 0:
            raise TransportError("retransmission timeout must be positive")
        if max_retransmits < 1:
            raise TransportError("retransmit budget must be at least 1")
        if flush_us < 0:
            raise TransportError("flush deadline must be non-negative")
        if not 0 < delayed_ack_us < rto_us:
            raise TransportError(
                "delayed-ack deadline must be positive and below the RTO "
                "(or every delayed ack triggers a spurious retransmit)")
        if ack_every < 1:
            raise TransportError("ack_every must be at least 1")
        if reorder_window < 1:
            raise TransportError("reorder window must be at least 1")
        if dupack_threshold < 1:
            raise TransportError("dup-ack threshold must be at least 1")
        mtu = MTU_BYTES if mtu_bytes is None else mtu_bytes
        budget = mtu - HEADER_BYTES - _FRAME_HEADER_BYTES
        if budget < _MSG_HEADER_BYTES + 1:
            raise TransportError(f"MTU {mtu} leaves no room for messages")
        self.host = host
        self.sim: Simulator = host.sim
        self.rto_us = rto_us
        self.max_retransmits = max_retransmits
        self.flush_us = flush_us
        self.delayed_ack_us = delayed_ack_us
        self.ack_every = ack_every
        self.reorder_window = reorder_window
        # The simulated links are FIFO, so a duplicate ack is a strong
        # loss signal; 2 tolerates one stray crossing.  Raise it if the
        # fabric ever reorders.
        self.dupack_threshold = dupack_threshold
        self.mtu_bytes = mtu
        self._frame_budget = budget
        self.data_kind = data_kind
        self.ack_kind = ack_kind
        self.tracer = tracer or Tracer()
        self._tx: Dict[str, _PeerTx] = {}
        self._rx: Dict[str, _PeerRx] = {}
        self._handler: Optional[DeliveryHandler] = None
        host.on(data_kind, self._on_data)
        host.on(ack_kind, self._on_ack)

    # -- public API -----------------------------------------------------
    def on_deliver(self, handler: DeliveryHandler) -> None:
        """Register the upper layer receiving (src, payload, bytes)."""
        self._handler = handler

    def send(self, dst: str, payload: Dict[str, Any], payload_bytes: int) -> None:
        """Queue one message for reliable, in-order delivery to ``dst``.

        The message coalesces with everything else queued toward ``dst``
        inside the flush deadline into one MTU-bounded frame."""
        tx = self._tx.setdefault(dst, _PeerTx())
        tx.coalesce.append((payload, payload_bytes))
        tx.coalesce_bytes += payload_bytes + _MSG_HEADER_BYTES
        if tx.coalesce_bytes >= self._frame_budget:
            # The MTU budget is full: frame the full prefix now instead
            # of waiting out the deadline.
            self.tracer.count("transport.frame.mtu_flush")
            self._flush_frames(dst, tx, full_only=True)
        if tx.coalesce and tx.flush_event is None:
            tx.flush_event = self.sim.schedule(self.flush_us, self._on_flush, dst)

    # -- window policy (subclass hooks) --------------------------------------
    def _window(self, dst: str, tx: _PeerTx) -> int:
        raise NotImplementedError

    def _ready(self, dst: str, tx: _PeerTx) -> bool:
        """May data flow to ``dst`` yet?  (Handshake gating.)"""
        return True

    def _on_ack_accounting(self, dst: str) -> None:
        """Window growth hook, called once per newly acked frame."""

    def _on_timeout_accounting(self, dst: str) -> None:
        """Window collapse hook, called once per retransmission timeout."""

    # -- sender side: framing -----------------------------------------------
    def _on_flush(self, dst: str) -> None:
        tx = self._tx.get(dst)
        if tx is None:
            return
        tx.flush_event = None
        self._flush_frames(dst, tx, full_only=False)

    def _flush_frames(self, dst: str, tx: _PeerTx, full_only: bool) -> None:
        """Pack the coalesce queue into MTU-bounded frames.

        ``full_only`` (the MTU-pressure path) leaves a partial tail
        coalescing until the flush deadline; the deadline path frames
        everything."""
        msgs = tx.coalesce
        while msgs:
            take = 1
            size = msgs[0][1] + _MSG_HEADER_BYTES
            while (take < len(msgs)
                   and size + msgs[take][1] + _MSG_HEADER_BYTES
                   <= self._frame_budget):
                size += msgs[take][1] + _MSG_HEADER_BYTES
                take += 1
            if full_only and take == len(msgs) and size < self._frame_budget:
                break  # partial tail keeps coalescing
            entries = msgs[:take]
            del msgs[:take]
            tx.coalesce_bytes -= size
            seq = tx.next_seq
            tx.next_seq += 1
            packet = Packet(
                kind=self.data_kind,
                src=self.host.name,
                dst=dst,
                payload={"seq": seq, "epoch": tx.epoch,
                         "msgs": [m for m, _ in entries],
                         "nbytes": [n for _, n in entries]},
                payload_bytes=_FRAME_HEADER_BYTES + size,
            )
            tx.queued_at[seq] = self.sim.now
            tx.backlog.append(packet)
            self.tracer.count("transport.frame.tx")
            self.tracer.sample("transport.frame.msgs", float(len(entries)),
                               self.sim.now)
        self._pump(dst, tx)

    # -- sender side: the window --------------------------------------------
    def _pump(self, dst: str, tx: _PeerTx) -> None:
        if not self._ready(dst, tx):
            return
        while tx.backlog and len(tx.inflight) < self._window(dst, tx):
            packet = tx.backlog.popleft()
            self._transmit(dst, tx, packet)

    def _transmit(self, dst: str, tx: _PeerTx, packet: Packet) -> None:
        seq = packet.payload["seq"]
        queued = tx.queued_at.pop(seq, None)
        if queued is not None:
            # First transmission: the delivery clock starts *here*, so
            # transport.delivery_us measures the wire (send -> ack), not
            # the backlog; the backlog wait is its own signal.
            tx.send_times[seq] = self.sim.now
            self.tracer.sample("transport.queue_us", self.sim.now - queued,
                               self.sim.now)
        timer = self.sim.schedule(self.rto_us, self._on_timeout, dst, seq)
        tx.inflight[seq] = (packet, timer)
        self.tracer.count("transport.tx")
        # Each (re)transmission is a distinct wire packet: fresh UID (so
        # switch duplicate suppression never eats a retransmission) and
        # fresh hop/TTL budget.  Protocol-level dedupe keys on seq.
        payload = dict(packet.payload)
        ack = self._take_pending_ack(dst)
        if ack is not None:
            payload["ack"], payload["ack_epoch"], payload["ack_sack"] = ack
            self.tracer.count("transport.ack.piggybacked")
        fresh = Packet(
            kind=packet.kind,
            src=packet.src,
            dst=packet.dst,
            payload=payload,
            payload_bytes=packet.payload_bytes,
        )
        self.host.send(fresh)

    def _on_timeout(self, dst: str, seq: int) -> None:
        tx = self._tx.get(dst)
        if tx is None or seq not in tx.inflight:
            return
        attempts = tx.attempts.get(seq, 0) + 1
        if attempts > self.max_retransmits:
            self._declare_peer_dead(dst, tx)
            return
        tx.attempts[seq] = attempts
        packet, _ = tx.inflight.pop(seq)
        self.tracer.count("transport.retransmit")
        self._on_timeout_accounting(dst)
        self._transmit(dst, tx, packet)

    def _declare_peer_dead(self, dst: str, tx: _PeerTx) -> None:
        """The retransmit budget ran out: stop spinning the event heap
        against ``dst`` and drop all sender state.  A later ``send()``
        starts a fresh epoch, so a recovered peer resynchronises instead
        of mistaking the new seq 0 for an ancient duplicate."""
        self.tracer.count("transport.peer_dead")
        for _, timer in tx.inflight.values():
            timer.cancel()
        if tx.flush_event is not None:
            tx.flush_event.cancel()
            tx.flush_event = None
        tx.inflight.clear()
        tx.backlog.clear()
        tx.coalesce.clear()
        tx.coalesce_bytes = 0
        tx.send_times.clear()
        tx.queued_at.clear()
        tx.attempts.clear()
        tx.next_seq = 0
        tx.epoch += 1
        tx.dup_acks = 0
        tx.fast_done = -1
        tx.recover = -1
        self._on_peer_dead(dst)

    def _on_peer_dead(self, dst: str) -> None:
        """Subclass hook: extra state to drop when a peer is declared dead."""

    # -- ack processing (standalone and piggybacked) -------------------------
    def _accept_cum_ack(self, peer: str, cum: int, epoch: int,
                        standalone: bool, sack: Tuple[int, ...] = ()) -> None:
        tx = self._tx.get(peer)
        if tx is None:
            return
        if epoch != tx.epoch:
            self.tracer.count("transport.dup_ack")  # ack from a dead epoch
            return
        # Selectively-acked frames sit in the receiver's reorder buffer:
        # they are delivered the instant the hole fills, so stop their
        # retransmit timers and open the window for fresh frames.
        freed = 0
        for seq in sack:
            entry = tx.inflight.pop(seq, None)
            if entry is None:
                continue
            entry[1].cancel()
            tx.attempts.pop(seq, None)
            sent_at = tx.send_times.pop(seq, None)
            if sent_at is not None:
                self.tracer.sample("transport.delivery_us",
                                   self.sim.now - sent_at, self.sim.now)
            self.tracer.count("transport.acked")
            self.tracer.count("transport.sacked")
            self._on_ack_accounting(peer)
            freed += 1
        acked = sorted(seq for seq in tx.inflight if seq <= cum)
        if not acked:
            if standalone and not freed:
                self.tracer.count("transport.dup_ack")
            # A no-progress ack while the next frame is inflight means
            # the receiver is buffering past a hole: after three, repair
            # the hole now (one RTT) instead of waiting out the RTO.
            hole = cum + 1
            if hole in tx.inflight and hole != tx.fast_done:
                tx.dup_acks += 1
                if tx.dup_acks >= self.dupack_threshold:
                    tx.dup_acks = 0
                    tx.fast_done = hole  # later dups for this hole are stale
                    tx.recover = max(tx.inflight)
                    self._fast_retransmit(peer, tx, hole)
            if freed:
                self._pump(peer, tx)
            return
        tx.dup_acks = 0
        for seq in acked:
            _, timer = tx.inflight.pop(seq)
            timer.cancel()
            tx.attempts.pop(seq, None)
            sent_at = tx.send_times.pop(seq, None)
            if sent_at is not None:
                self.tracer.sample("transport.delivery_us",
                                   self.sim.now - sent_at, self.sim.now)
            self.tracer.count("transport.acked")
            self._on_ack_accounting(peer)
        if tx.recover >= 0:
            if cum >= tx.recover:
                tx.recover = -1  # the whole loss window has been repaired
            else:
                # NewReno partial ack: progress inside the loss window
                # exposes the next hole — repair it now rather than
                # burning an RTO per hole.
                hole = cum + 1
                if hole in tx.inflight and hole != tx.fast_done:
                    tx.fast_done = hole
                    self._fast_retransmit(peer, tx, hole)
        self._pump(peer, tx)

    def _fast_retransmit(self, dst: str, tx: _PeerTx, seq: int) -> None:
        attempts = tx.attempts.get(seq, 0) + 1
        if attempts > self.max_retransmits:
            self._declare_peer_dead(dst, tx)
            return
        tx.attempts[seq] = attempts
        packet, timer = tx.inflight.pop(seq)
        timer.cancel()
        self.tracer.count("transport.retransmit")
        self.tracer.count("transport.fast_retransmit")
        self._on_timeout_accounting(dst)
        self._transmit(dst, tx, packet)

    def _on_ack(self, packet: Packet) -> None:
        self._accept_cum_ack(packet.src, packet.payload["cum"],
                             packet.payload.get("epoch", 0), standalone=True,
                             sack=tuple(packet.payload.get("sack", ())))

    # -- receiver side: acks --------------------------------------------------
    # Cap on the out-of-order seqs reported per ack (keeps the modelled
    # ack size bounded; anything beyond repairs via later acks or RTO).
    SACK_LIMIT = 64
    _SACK_ENTRY_BYTES = 4

    def _sack_list(self, rx: _PeerRx) -> List[int]:
        return sorted(rx.out_of_order)[: self.SACK_LIMIT]

    def _take_pending_ack(self, peer: str) -> Optional[Tuple[int, int, List[int]]]:
        """Consume the ack owed to ``peer`` for piggybacking, if any."""
        rx = self._rx.get(peer)
        if rx is None or rx.ack_owed == 0:
            return None
        if rx.ack_event is not None:
            rx.ack_event.cancel()
            rx.ack_event = None
        rx.ack_owed = 0
        return rx.expected_seq - 1, rx.epoch, self._sack_list(rx)

    def _note_ack_owed(self, src: str, rx: _PeerRx) -> None:
        rx.ack_owed += 1
        if rx.ack_owed >= self.ack_every:
            self._send_ack(src, rx, delayed=False)
        elif rx.ack_event is None:
            rx.ack_event = self.sim.schedule(self.delayed_ack_us,
                                             self._on_delayed_ack, src)

    def _on_delayed_ack(self, src: str) -> None:
        rx = self._rx.get(src)
        if rx is None:
            return
        rx.ack_event = None
        if rx.ack_owed:
            self._send_ack(src, rx, delayed=True)

    def _send_ack(self, src: str, rx: _PeerRx, delayed: bool) -> None:
        if rx.ack_event is not None:
            rx.ack_event.cancel()
            rx.ack_event = None
        rx.ack_owed = 0
        self.tracer.count("transport.ack.tx")
        if delayed:
            self.tracer.count("transport.ack.delayed")
        sack = self._sack_list(rx)
        self.host.send(Packet(
            kind=self.ack_kind,
            src=self.host.name,
            dst=src,
            payload={"cum": rx.expected_seq - 1, "epoch": rx.epoch,
                     "sack": sack},
            payload_bytes=_ACK_BYTES + self._SACK_ENTRY_BYTES * len(sack),
        ))

    # -- receiver side: data ---------------------------------------------------
    def _on_data(self, packet: Packet) -> None:
        src = packet.src
        payload = packet.payload
        if "ack" in payload:
            # Reverse-direction cumulative ack piggybacked on this frame.
            self._accept_cum_ack(src, payload["ack"],
                                 payload.get("ack_epoch", 0), standalone=False,
                                 sack=tuple(payload.get("ack_sack", ())))
        rx = self._rx.setdefault(src, _PeerRx())
        seq = payload["seq"]
        epoch = payload.get("epoch", 0)
        if epoch > rx.epoch:
            # The sender declared us dead and restarted from seq 0 in a
            # fresh epoch; realign so the restart is not read as dups.
            rx.epoch = epoch
            rx.expected_seq = 0
            rx.out_of_order.clear()
        elif epoch < rx.epoch:
            self.tracer.count("transport.dup_data")  # straggler from a dead epoch
            return
        if seq < rx.expected_seq or seq in rx.out_of_order:
            # Duplicate: our ack was lost or still pending — re-ack
            # immediately (an RTO already burnt; don't let the delayed
            # timer feed further retransmissions).
            self.tracer.count("transport.dup_data")
            self._send_ack(src, rx, delayed=False)
            return
        if seq >= rx.expected_seq + self.reorder_window:
            # Beyond the reorder window: drop *without* acking so the
            # buffer stays bounded; the sender's retransmit timer will
            # re-offer the frame once expected_seq has caught up.
            self.tracer.count("transport.rx_overflow")
            return
        rx.out_of_order[seq] = packet
        while rx.expected_seq in rx.out_of_order:
            ready = rx.out_of_order.pop(rx.expected_seq)
            rx.expected_seq += 1
            msgs = ready.payload["msgs"]
            sizes = ready.payload["nbytes"]
            self.tracer.count("transport.delivered", len(msgs))
            if self._handler is not None:
                for msg, nbytes in zip(msgs, sizes):
                    self._handler(src, msg, nbytes)
        if rx.out_of_order:
            # A hole is open: ack immediately so the stalled cumulative
            # ack reaches the sender as a dup-ack (its fast-retransmit
            # signal), instead of batching behind the delayed-ack timer.
            self._send_ack(src, rx, delayed=False)
        else:
            self._note_ack_owed(src, rx)

    # -- introspection -----------------------------------------------------
    def inflight_count(self, dst: str) -> int:
        """Frames awaiting acknowledgement toward ``dst``."""
        tx = self._tx.get(dst)
        return len(tx.inflight) if tx else 0

    def backlog_count(self, dst: str) -> int:
        """Frames queued behind the window toward ``dst``."""
        tx = self._tx.get(dst)
        return len(tx.backlog) if tx else 0

    def coalescing_count(self, dst: str) -> int:
        """Messages awaiting framing toward ``dst``."""
        tx = self._tx.get(dst)
        return len(tx.coalesce) if tx else 0


class LightweightTransport(_TransportBase):
    """The paper's lightweight reliable transmission: fixed window, no
    handshake, no congestion machinery."""

    def __init__(self, host: Host, window: int = 32, rto_us: float = 200.0,
                 max_retransmits: int = 30, tracer: Optional[Tracer] = None,
                 **kwargs):
        if window < 1:
            raise TransportError("window must be at least 1")
        super().__init__(host, rto_us=rto_us, data_kind="lwt.data",
                         ack_kind="lwt.ack", max_retransmits=max_retransmits,
                         tracer=tracer, **kwargs)
        self.window = window

    def _window(self, dst: str, tx: _PeerTx) -> int:
        return self.window


class TcpLikeTransport(_TransportBase):
    """TCP-flavoured baseline: handshake + slow start + Tahoe collapse.

    Deliberately simplified (no fast retransmit, fixed RTO) — the point
    of E9 is the *structural* overheads the paper names: connection
    setup latency and windows that start from one segment.
    """

    HANDSHAKE_SYN = "tcp.syn"
    HANDSHAKE_SYNACK = "tcp.synack"

    def __init__(self, host: Host, rto_us: float = 200.0,
                 initial_ssthresh: int = 64, max_window: int = 256,
                 max_retransmits: int = 30, tracer: Optional[Tracer] = None,
                 **kwargs):
        super().__init__(host, rto_us=rto_us, data_kind="tcp.data",
                         ack_kind="tcp.ack", max_retransmits=max_retransmits,
                         tracer=tracer, **kwargs)
        self.initial_ssthresh = initial_ssthresh
        self.max_window = max_window
        self._cwnd: Dict[str, float] = {}
        self._ssthresh: Dict[str, int] = {}
        self._connected: Dict[str, bool] = {}
        host.on(self.HANDSHAKE_SYN, self._on_syn)
        host.on(self.HANDSHAKE_SYNACK, self._on_synack)

    # -- handshake ---------------------------------------------------------
    def _ready(self, dst: str, tx: _PeerTx) -> bool:
        state = self._connected.get(dst)
        if state is True:
            return True
        if state is None:
            self._connected[dst] = False
            self._cwnd[dst] = 1.0
            self._ssthresh[dst] = self.initial_ssthresh
            self.tracer.count("transport.handshake")
            self._send_syn(dst)
        return False

    # Give up on a peer after this many unanswered SYNs (a dead peer
    # must not keep the event heap spinning forever).
    MAX_SYN_RETRIES = 30

    def _send_syn(self, dst: str, attempt: int = 0) -> None:
        """Transmit a SYN and keep retrying until the SYNACK arrives
        (without this, a single lost handshake packet deadlocks the
        connection forever under loss)."""
        if self._connected.get(dst):
            return
        if attempt >= self.MAX_SYN_RETRIES:
            self.tracer.count("transport.handshake_abandoned")
            # Forget the half-open state entirely: leaving it at False
            # would strand the peer forever (later sends queue into the
            # backlog but _ready never sends another SYN).  Back to
            # "unknown", the next send() restarts the handshake and the
            # queued backlog flows once it completes.
            self._connected.pop(dst, None)
            return
        self.host.send(Packet(
            kind=self.HANDSHAKE_SYN, src=self.host.name, dst=dst,
            payload_bytes=_ACK_BYTES,
        ))
        self.sim.schedule(self.rto_us, self._send_syn, dst, attempt + 1)

    def _on_syn(self, packet: Packet) -> None:
        self.host.send(Packet(
            kind=self.HANDSHAKE_SYNACK, src=self.host.name, dst=packet.src,
            payload_bytes=_ACK_BYTES,
        ))

    def _on_synack(self, packet: Packet) -> None:
        dst = packet.src
        if not self._connected.get(dst):
            self._connected[dst] = True
            tx = self._tx.get(dst)
            if tx is not None:
                self._pump(dst, tx)

    # -- congestion window -----------------------------------------------------
    def _window(self, dst: str, tx: _PeerTx) -> int:
        return max(1, int(self._cwnd.get(dst, 1.0)))

    def _on_ack_accounting(self, dst: str) -> None:
        cwnd = self._cwnd.get(dst, 1.0)
        if cwnd < self._ssthresh.get(dst, self.initial_ssthresh):
            cwnd += 1.0  # slow start: exponential per RTT
        else:
            cwnd += 1.0 / max(cwnd, 1.0)  # congestion avoidance
        self._cwnd[dst] = min(cwnd, float(self.max_window))

    def _on_timeout_accounting(self, dst: str) -> None:
        cwnd = self._cwnd.get(dst, 1.0)
        self._ssthresh[dst] = max(2, int(cwnd / 2))
        self._cwnd[dst] = 1.0

    def _on_peer_dead(self, dst: str) -> None:
        # Drop the connection with the sender state: the next send()
        # performs a fresh handshake instead of talking to a corpse.
        self._connected.pop(dst, None)
        self._cwnd.pop(dst, None)
        self._ssthresh.pop(dst, None)
