"""Reliable transports for memory messages.

§3.2 argues that Ethernet alone lacks reliability while TCP drags along
machinery (slow start, connection setup) that memory traffic does not
want: "there will need to be a new, light-weight form of reliable
transmission, separated from the other features provided by TCP."

Two transports implement the comparison for experiment E9:

* :class:`LightweightTransport` — the paper's proposal: per-peer
  sequence numbers, a fixed send window, per-packet retransmit timers,
  receiver-side duplicate suppression.  No handshake, no slow start.
* :class:`TcpLikeTransport` — the incumbent baseline: a 1-RTT handshake
  per peer, slow-start congestion window growth from 1 segment, and
  timeout-triggered window collapse (Tahoe-style).

Both deliver each message exactly once, in order, to the registered
upper-layer handler, and both record per-message delivery latency.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from ..sim import ScheduledEvent, Simulator, Tracer
from ..net.host import Host
from ..net.packet import Packet

__all__ = ["LightweightTransport", "TcpLikeTransport", "TransportError"]

DeliveryHandler = Callable[[str, Dict[str, Any], int], None]
# handler(src_host, payload, payload_bytes)

_DATA_HEADER_BYTES = 12  # seq + flags
_ACK_BYTES = 12


class TransportError(Exception):
    """Raised on transport misuse (unknown peer state, bad handler)."""


class _PeerTx:
    """Per-destination sender state shared by both transports."""

    def __init__(self) -> None:
        self.next_seq = 0
        self.epoch = 0
        self.inflight: Dict[int, Tuple[Packet, ScheduledEvent]] = {}
        self.backlog: Deque[Packet] = deque()
        self.send_times: Dict[int, float] = {}
        self.attempts: Dict[int, int] = {}


class _PeerRx:
    """Per-source receiver state: exactly-once, in-order delivery."""

    def __init__(self) -> None:
        self.expected_seq = 0
        self.epoch = 0
        self.out_of_order: Dict[int, Packet] = {}


class _TransportBase:
    """Common machinery: framing, acks, retransmission, reordering."""

    def __init__(
        self,
        host: Host,
        rto_us: float = 200.0,
        data_kind: str = "rt.data",
        ack_kind: str = "rt.ack",
        max_retransmits: int = 30,
        tracer: Optional[Tracer] = None,
    ):
        if rto_us <= 0:
            raise TransportError("retransmission timeout must be positive")
        if max_retransmits < 1:
            raise TransportError("retransmit budget must be at least 1")
        self.host = host
        self.sim: Simulator = host.sim
        self.rto_us = rto_us
        self.max_retransmits = max_retransmits
        self.data_kind = data_kind
        self.ack_kind = ack_kind
        self.tracer = tracer or Tracer()
        self._tx: Dict[str, _PeerTx] = {}
        self._rx: Dict[str, _PeerRx] = {}
        self._handler: Optional[DeliveryHandler] = None
        host.on(data_kind, self._on_data)
        host.on(ack_kind, self._on_ack)

    # -- public API -----------------------------------------------------
    def on_deliver(self, handler: DeliveryHandler) -> None:
        """Register the upper layer receiving (src, payload, bytes)."""
        self._handler = handler

    def send(self, dst: str, payload: Dict[str, Any], payload_bytes: int) -> None:
        """Queue one message for reliable, in-order delivery to ``dst``."""
        tx = self._tx.setdefault(dst, _PeerTx())
        seq = tx.next_seq
        tx.next_seq += 1
        packet = Packet(
            kind=self.data_kind,
            src=self.host.name,
            dst=dst,
            payload={"seq": seq, "epoch": tx.epoch, "data": payload},
            payload_bytes=_DATA_HEADER_BYTES + payload_bytes,
        )
        tx.send_times[seq] = self.sim.now
        tx.backlog.append(packet)
        self._pump(dst, tx)

    # -- window policy (subclass hooks) --------------------------------------
    def _window(self, dst: str, tx: _PeerTx) -> int:
        raise NotImplementedError

    def _ready(self, dst: str, tx: _PeerTx) -> bool:
        """May data flow to ``dst`` yet?  (Handshake gating.)"""
        return True

    def _on_ack_accounting(self, dst: str) -> None:
        """Window growth hook, called once per accepted ack."""

    def _on_timeout_accounting(self, dst: str) -> None:
        """Window collapse hook, called once per retransmission timeout."""

    # -- sender side --------------------------------------------------------
    def _pump(self, dst: str, tx: _PeerTx) -> None:
        if not self._ready(dst, tx):
            return
        while tx.backlog and len(tx.inflight) < self._window(dst, tx):
            packet = tx.backlog.popleft()
            self._transmit(dst, tx, packet)

    def _transmit(self, dst: str, tx: _PeerTx, packet: Packet) -> None:
        seq = packet.payload["seq"]
        timer = self.sim.schedule(self.rto_us, self._on_timeout, dst, seq)
        tx.inflight[seq] = (packet, timer)
        self.tracer.count("transport.tx")
        # Each (re)transmission is a distinct wire packet: fresh UID (so
        # switch duplicate suppression never eats a retransmission) and
        # fresh hop/TTL budget.  Protocol-level dedupe keys on seq.
        fresh = Packet(
            kind=packet.kind,
            src=packet.src,
            dst=packet.dst,
            payload=packet.payload,
            payload_bytes=packet.payload_bytes,
        )
        self.host.send(fresh)

    def _on_timeout(self, dst: str, seq: int) -> None:
        tx = self._tx.get(dst)
        if tx is None or seq not in tx.inflight:
            return
        attempts = tx.attempts.get(seq, 0) + 1
        if attempts > self.max_retransmits:
            self._declare_peer_dead(dst, tx)
            return
        tx.attempts[seq] = attempts
        packet, _ = tx.inflight.pop(seq)
        self.tracer.count("transport.retransmit")
        self._on_timeout_accounting(dst)
        self._transmit(dst, tx, packet)

    def _declare_peer_dead(self, dst: str, tx: _PeerTx) -> None:
        """The retransmit budget ran out: stop spinning the event heap
        against ``dst`` and drop all sender state.  A later ``send()``
        starts a fresh epoch, so a recovered peer resynchronises instead
        of mistaking the new seq 0 for an ancient duplicate."""
        self.tracer.count("transport.peer_dead")
        for _, timer in tx.inflight.values():
            timer.cancel()
        tx.inflight.clear()
        tx.backlog.clear()
        tx.send_times.clear()
        tx.attempts.clear()
        tx.next_seq = 0
        tx.epoch += 1
        self._on_peer_dead(dst)

    def _on_peer_dead(self, dst: str) -> None:
        """Subclass hook: extra state to drop when a peer is declared dead."""

    def _on_ack(self, packet: Packet) -> None:
        dst = packet.src
        tx = self._tx.get(dst)
        if tx is None:
            return
        if packet.payload.get("epoch", 0) != tx.epoch:
            self.tracer.count("transport.dup_ack")  # ack from a dead epoch
            return
        seq = packet.payload["seq"]
        entry = tx.inflight.pop(seq, None)
        if entry is None:
            self.tracer.count("transport.dup_ack")
            return
        entry[1].cancel()
        tx.attempts.pop(seq, None)
        sent_at = tx.send_times.pop(seq, None)
        if sent_at is not None:
            self.tracer.sample("transport.delivery_us", self.sim.now - sent_at, self.sim.now)
        self.tracer.count("transport.acked")
        self._on_ack_accounting(dst)
        self._pump(dst, tx)

    # -- receiver side ---------------------------------------------------------
    def _on_data(self, packet: Packet) -> None:
        src = packet.src
        rx = self._rx.setdefault(src, _PeerRx())
        seq = packet.payload["seq"]
        epoch = packet.payload.get("epoch", 0)
        ack = Packet(
            kind=self.ack_kind,
            src=self.host.name,
            dst=src,
            payload={"seq": seq, "epoch": epoch},
            payload_bytes=_ACK_BYTES,
        )
        self.host.send(ack)
        if epoch > rx.epoch:
            # The sender declared us dead and restarted from seq 0 in a
            # fresh epoch; realign so the restart is not read as dups.
            rx.epoch = epoch
            rx.expected_seq = 0
            rx.out_of_order.clear()
        elif epoch < rx.epoch:
            self.tracer.count("transport.dup_data")  # straggler from a dead epoch
            return
        if seq < rx.expected_seq or seq in rx.out_of_order:
            self.tracer.count("transport.dup_data")
            return
        rx.out_of_order[seq] = packet
        while rx.expected_seq in rx.out_of_order:
            ready = rx.out_of_order.pop(rx.expected_seq)
            rx.expected_seq += 1
            self.tracer.count("transport.delivered")
            if self._handler is not None:
                self._handler(
                    src,
                    ready.payload["data"],
                    ready.payload_bytes - _DATA_HEADER_BYTES,
                )

    # -- introspection -----------------------------------------------------
    def inflight_count(self, dst: str) -> int:
        """Messages awaiting acknowledgement toward ``dst``."""
        tx = self._tx.get(dst)
        return len(tx.inflight) if tx else 0

    def backlog_count(self, dst: str) -> int:
        """Messages queued behind the window toward ``dst``."""
        tx = self._tx.get(dst)
        return len(tx.backlog) if tx else 0


class LightweightTransport(_TransportBase):
    """The paper's lightweight reliable transmission: fixed window, no
    handshake, no congestion machinery."""

    def __init__(self, host: Host, window: int = 32, rto_us: float = 200.0,
                 max_retransmits: int = 30, tracer: Optional[Tracer] = None):
        if window < 1:
            raise TransportError("window must be at least 1")
        super().__init__(host, rto_us=rto_us, data_kind="lwt.data",
                         ack_kind="lwt.ack", max_retransmits=max_retransmits,
                         tracer=tracer)
        self.window = window

    def _window(self, dst: str, tx: _PeerTx) -> int:
        return self.window


class TcpLikeTransport(_TransportBase):
    """TCP-flavoured baseline: handshake + slow start + Tahoe collapse.

    Deliberately simplified (no fast retransmit, fixed RTO) — the point
    of E9 is the *structural* overheads the paper names: connection
    setup latency and windows that start from one segment.
    """

    HANDSHAKE_SYN = "tcp.syn"
    HANDSHAKE_SYNACK = "tcp.synack"

    def __init__(self, host: Host, rto_us: float = 200.0,
                 initial_ssthresh: int = 64, max_window: int = 256,
                 max_retransmits: int = 30, tracer: Optional[Tracer] = None):
        super().__init__(host, rto_us=rto_us, data_kind="tcp.data",
                         ack_kind="tcp.ack", max_retransmits=max_retransmits,
                         tracer=tracer)
        self.initial_ssthresh = initial_ssthresh
        self.max_window = max_window
        self._cwnd: Dict[str, float] = {}
        self._ssthresh: Dict[str, int] = {}
        self._connected: Dict[str, bool] = {}
        host.on(self.HANDSHAKE_SYN, self._on_syn)
        host.on(self.HANDSHAKE_SYNACK, self._on_synack)

    # -- handshake ---------------------------------------------------------
    def _ready(self, dst: str, tx: _PeerTx) -> bool:
        state = self._connected.get(dst)
        if state is True:
            return True
        if state is None:
            self._connected[dst] = False
            self._cwnd[dst] = 1.0
            self._ssthresh[dst] = self.initial_ssthresh
            self.tracer.count("transport.handshake")
            self._send_syn(dst)
        return False

    # Give up on a peer after this many unanswered SYNs (a dead peer
    # must not keep the event heap spinning forever).
    MAX_SYN_RETRIES = 30

    def _send_syn(self, dst: str, attempt: int = 0) -> None:
        """Transmit a SYN and keep retrying until the SYNACK arrives
        (without this, a single lost handshake packet deadlocks the
        connection forever under loss)."""
        if self._connected.get(dst):
            return
        if attempt >= self.MAX_SYN_RETRIES:
            self.tracer.count("transport.handshake_abandoned")
            # Forget the half-open state entirely: leaving it at False
            # would strand the peer forever (later sends queue into the
            # backlog but _ready never sends another SYN).  Back to
            # "unknown", the next send() restarts the handshake and the
            # queued backlog flows once it completes.
            self._connected.pop(dst, None)
            return
        self.host.send(Packet(
            kind=self.HANDSHAKE_SYN, src=self.host.name, dst=dst,
            payload_bytes=_ACK_BYTES,
        ))
        self.sim.schedule(self.rto_us, self._send_syn, dst, attempt + 1)

    def _on_syn(self, packet: Packet) -> None:
        self.host.send(Packet(
            kind=self.HANDSHAKE_SYNACK, src=self.host.name, dst=packet.src,
            payload_bytes=_ACK_BYTES,
        ))

    def _on_synack(self, packet: Packet) -> None:
        dst = packet.src
        if not self._connected.get(dst):
            self._connected[dst] = True
            tx = self._tx.get(dst)
            if tx is not None:
                self._pump(dst, tx)

    # -- congestion window -----------------------------------------------------
    def _window(self, dst: str, tx: _PeerTx) -> int:
        return max(1, int(self._cwnd.get(dst, 1.0)))

    def _on_ack_accounting(self, dst: str) -> None:
        cwnd = self._cwnd.get(dst, 1.0)
        if cwnd < self._ssthresh.get(dst, self.initial_ssthresh):
            cwnd += 1.0  # slow start: exponential per RTT
        else:
            cwnd += 1.0 / max(cwnd, 1.0)  # congestion avoidance
        self._cwnd[dst] = min(cwnd, float(self.max_window))

    def _on_timeout_accounting(self, dst: str) -> None:
        cwnd = self._cwnd.get(dst, 1.0)
        self._ssthresh[dst] = max(2, int(cwnd / 2))
        self._cwnd[dst] = 1.0

    def _on_peer_dead(self, dst: str) -> None:
        # Drop the connection with the sender state: the next send()
        # performs a fresh handshake instead of talking to a corpse.
        self._connected.pop(dst, None)
        self._cwnd.pop(dst, None)
        self._ssthresh.pop(dst, None)
