"""The coherence-backed proxy resolver.

Adapts a :class:`~repro.memproto.coherence.CoherenceAgent` to the
resolver protocol of :class:`repro.core.proxies.ProxyCache`, closing the
loop PROXIES.md describes:

* **resolve_many** acquires Shared copies of whole objects in one
  batched acquisition per home (:meth:`CoherenceAgent.read_objects`), so
  a reachability-walk level costs one acquire/grant packet pair per home
  instead of one per object;
* **store** goes through :meth:`CoherenceAgent.write` — the Modified
  acquisition *is* the ownership transfer: every other copy holder is
  probed and invalidated before the proxy's first mutation lands;
* pushed **invalidations** propagate: when a probe drops the agent's
  cache entry, the registered proxy caches drop their derived bytes in
  the same instant, so a proxy never serves stale data.

Objects can be hosted either as raw byte blobs (``wire_images=False``;
no FOT, so reachability walks stop at the roots) or as full
:meth:`MemObject.to_wire` images (the default), in which case the
resolver parses the header + FOT once per fetch and hands proxies the
*payload* bytes — proxy offsets stay payload offsets, and FOT edges and
external pointers resolve exactly as they would against the resident
object.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Tuple

from ..core.objectid import ObjectID
from ..core.objects import MemObject
from ..core.pointers import InvariantPointer
from .coherence import CoherenceAgent

__all__ = ["CoherentProxyResolver"]

# MemObject.to_wire header: oid(16) + size(8) + version(8) + kind(1) + fot_len(4)
_WIRE_HEADER_BYTES = 37


class CoherentProxyResolver:
    """Bridge between a :class:`ProxyCache` and a :class:`CoherenceAgent`."""

    def __init__(self, agent: CoherenceAgent, wire_images: bool = True):
        self.agent = agent
        self.wire_images = wire_images
        self._parsed: Dict[ObjectID, MemObject] = {}
        # Payload offset inside the wire image, kept across invalidations
        # (the FOT region of an object never moves under payload writes).
        self._payload_at: Dict[ObjectID, int] = {}
        self._listeners: List[Callable[[ObjectID], None]] = []
        agent.add_invalidation_listener(self._on_agent_invalidate)

    # -- resolver protocol (see repro.core.proxies) --------------------------
    def register_invalidation(self, callback: Callable[[ObjectID], None]) -> None:
        """ProxyCache hook: forward agent-side probe invalidations."""
        self._listeners.append(callback)

    def resolve_many(self, oids: Iterable[ObjectID]):
        """Process: batched Shared acquisition of whole objects; returns
        ``{oid: payload bytes}`` (raw blob bytes when not wire images)."""
        oids = list(oids)
        images = yield from self.agent.read_objects(oids)
        if not self.wire_images:
            return images
        out: Dict[ObjectID, bytes] = {}
        for oid, image in images.items():
            obj = self._parse(oid, image)
            out[oid] = obj.read(0, obj.size)
        return out

    def store(self, oid: ObjectID, offset: int, data: bytes):
        """Process: exclusive write-through — the Modified acquisition
        invalidates every other copy before the store is applied."""
        at = offset
        if self.wire_images:
            payload_at = self._payload_at.get(oid)
            if payload_at is None:
                # Never resolved through us: fetch once to learn the layout.
                images = yield from self.agent.read_objects([oid])
                self._parse(oid, images[oid])
                payload_at = self._payload_at[oid]
            at = payload_at + offset
        yield from self.agent.write(oid, at, data)
        obj = self._parsed.get(oid)
        if obj is not None:
            obj.write(offset, data)
        return True

    def successors(self, oid: ObjectID, image: bytes) -> List[ObjectID]:
        """FOT targets of a resolved object (empty for raw blobs)."""
        if not self.wire_images:
            return []
        obj = self._parsed.get(oid)
        return obj.fot.targets() if obj is not None else []

    def resolve_pointer(self, oid: ObjectID, pointer: InvariantPointer,
                        image: bytes) -> Tuple[ObjectID, int]:
        """External-pointer resolution through the parsed FOT."""
        obj = self._parsed.get(oid)
        if obj is None:
            raise ValueError(
                f"cannot resolve a pointer out of unparsed object {oid.short()}")
        return obj.resolve(pointer)

    # -- internals -----------------------------------------------------------
    def _parse(self, oid: ObjectID, image: bytes) -> MemObject:
        obj = MemObject.from_wire(image)
        self._parsed[oid] = obj
        self._payload_at[oid] = len(image) - obj.size
        return obj

    def _on_agent_invalidate(self, oid: ObjectID) -> None:
        self._parsed.pop(oid, None)
        for callback in self._listeners:
            callback(oid)
