"""The bus-like network vocabulary: memory messages over packets.

§3.2: "There are a handful of message types, consisting of requests and
replies for read or write operations, followed by an address, and an
optional payload with data, where payload size is usually a cache line."
Cache coherence adds exclusive-access, upgrade, and invalidate types
(the TileLink-flavoured set).

This module defines that vocabulary and the packet builders for it.  The
address is a (object ID, offset) pair — identity, not location — so these
packets can be identity-routed by switches or host-addressed once
discovery has resolved a location.
"""

from __future__ import annotations

from typing import Optional

from ..core.objectid import ObjectID
from ..net.packet import Packet

__all__ = [
    "CACHE_LINE_BYTES",
    "MSG_READ_REQ",
    "MSG_READ_RSP",
    "MSG_WRITE_REQ",
    "MSG_WRITE_ACK",
    "MSG_ACQUIRE",
    "MSG_GRANT",
    "MSG_RELEASE",
    "MSG_RELEASE_ACK",
    "MSG_PROBE_INVALIDATE",
    "MSG_PROBE_ACK",
    "MSG_UPGRADE_REQ",
    "MSG_UPGRADE_ACK",
    "read_request",
    "read_response",
    "write_request",
    "write_ack",
]

CACHE_LINE_BYTES = 64

# Uncached load/store vocabulary (TileLink-UL flavoured).
MSG_READ_REQ = "mem.read_req"
MSG_READ_RSP = "mem.read_rsp"
MSG_WRITE_REQ = "mem.write_req"
MSG_WRITE_ACK = "mem.write_ack"

# Coherence vocabulary (TileLink-C flavoured).
MSG_ACQUIRE = "coh.acquire"            # request a cached copy (shared or exclusive)
MSG_GRANT = "coh.grant"                # home grants the copy (+data)
MSG_RELEASE = "coh.release"            # writeback / downgrade, possibly with data
MSG_RELEASE_ACK = "coh.release_ack"
MSG_PROBE_INVALIDATE = "coh.probe_inv" # home tells a sharer to drop its copy
MSG_PROBE_ACK = "coh.probe_ack"
MSG_UPGRADE_REQ = "coh.upgrade_req"    # S -> M without data movement
MSG_UPGRADE_ACK = "coh.upgrade_ack"

# Modelled payload byte counts for the non-data fields of each message.
_ADDR_BYTES = 8  # 48-bit offset + op metadata; the 16B oid rides the oid field
_REQID_BYTES = 8


def read_request(src: str, oid: ObjectID, offset: int, length: int,
                 req_id: int, dst: Optional[str] = None) -> Packet:
    """Load ``length`` bytes at (oid, offset).  ``dst=None`` makes it
    identity-routed; a host name sends it point-to-point."""
    return Packet(
        kind=MSG_READ_REQ,
        src=src,
        dst=dst,
        oid=oid,
        payload={"offset": offset, "length": length, "req_id": req_id},
        payload_bytes=_ADDR_BYTES + _REQID_BYTES,
    )


def read_response(request: Packet, data: bytes, responder: str) -> Packet:
    """Reply carrying the loaded bytes back to the requester."""
    return Packet(
        kind=MSG_READ_RSP,
        src=responder,
        dst=request.src,
        payload={"req_id": request.payload["req_id"], "data": data},
        payload_bytes=_REQID_BYTES + len(data),
    )


def write_request(src: str, oid: ObjectID, offset: int, data: bytes,
                  req_id: int, dst: Optional[str] = None) -> Packet:
    """Store ``data`` at (oid, offset)."""
    return Packet(
        kind=MSG_WRITE_REQ,
        src=src,
        dst=dst,
        oid=oid,
        payload={"offset": offset, "data": data, "req_id": req_id},
        payload_bytes=_ADDR_BYTES + _REQID_BYTES + len(data),
    )


def write_ack(request: Packet, responder: str) -> Packet:
    """Build the acknowledgement for a write request."""
    return Packet(
        kind=MSG_WRITE_ACK,
        src=responder,
        dst=request.src,
        payload={"req_id": request.payload["req_id"]},
        payload_bytes=_REQID_BYTES,
    )
