"""The bus-like network vocabulary: memory messages over packets.

§3.2: "There are a handful of message types, consisting of requests and
replies for read or write operations, followed by an address, and an
optional payload with data, where payload size is usually a cache line."
Cache coherence adds exclusive-access, upgrade, and invalidate types
(the TileLink-flavoured set).

This module defines that vocabulary and the packet builders for it.  The
address is a (object ID, offset) pair — identity, not location — so these
packets can be identity-routed by switches or host-addressed once
discovery has resolved a location.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.objectid import ObjectID
from ..net.packet import Packet

__all__ = [
    "CACHE_LINE_BYTES",
    "COHERENCE_ENTRY_BYTES",
    "MSG_READ_REQ",
    "MSG_READ_RSP",
    "MSG_WRITE_REQ",
    "MSG_WRITE_ACK",
    "MSG_ACQUIRE",
    "MSG_GRANT",
    "MSG_RELEASE",
    "MSG_RELEASE_ACK",
    "MSG_PROBE_INVALIDATE",
    "MSG_PROBE_ACK",
    "MSG_UPGRADE_REQ",
    "MSG_UPGRADE_ACK",
    "read_request",
    "read_response",
    "write_request",
    "write_ack",
    "acquire_packet",
    "grant_packet",
    "release_packet",
    "probe_packet",
    "probe_ack_packet",
]

CACHE_LINE_BYTES = 64

# Uncached load/store vocabulary (TileLink-UL flavoured).
MSG_READ_REQ = "mem.read_req"
MSG_READ_RSP = "mem.read_rsp"
MSG_WRITE_REQ = "mem.write_req"
MSG_WRITE_ACK = "mem.write_ack"

# Coherence vocabulary (TileLink-C flavoured).
MSG_ACQUIRE = "coh.acquire"            # request a cached copy (shared or exclusive)
MSG_GRANT = "coh.grant"                # home grants the copy (+data)
MSG_RELEASE = "coh.release"            # writeback / downgrade, possibly with data
MSG_RELEASE_ACK = "coh.release_ack"
MSG_PROBE_INVALIDATE = "coh.probe_inv" # home tells a sharer to drop its copy
MSG_PROBE_ACK = "coh.probe_ack"
MSG_UPGRADE_REQ = "coh.upgrade_req"    # S -> M without data movement
MSG_UPGRADE_ACK = "coh.upgrade_ack"

# Modelled payload byte counts for the non-data fields of each message.
_ADDR_BYTES = 8  # 48-bit offset + op metadata; the 16B oid rides the oid field
_REQID_BYTES = 8

#: Modelled bytes for one coherence entry inside a batched packet: the
#: 16B object ID plus request id / permission / flag metadata.  Batched
#: acquire/grant/probe packets charge this per entry (plus any data), so
#: an N-entry packet costs one wire header instead of N.
COHERENCE_ENTRY_BYTES = 16


def read_request(src: str, oid: ObjectID, offset: int, length: int,
                 req_id: int, dst: Optional[str] = None) -> Packet:
    """Load ``length`` bytes at (oid, offset).  ``dst=None`` makes it
    identity-routed; a host name sends it point-to-point."""
    return Packet(
        kind=MSG_READ_REQ,
        src=src,
        dst=dst,
        oid=oid,
        payload={"offset": offset, "length": length, "req_id": req_id},
        payload_bytes=_ADDR_BYTES + _REQID_BYTES,
    )


def read_response(request: Packet, data: bytes, responder: str) -> Packet:
    """Reply carrying the loaded bytes back to the requester."""
    return Packet(
        kind=MSG_READ_RSP,
        src=responder,
        dst=request.src,
        payload={"req_id": request.payload["req_id"], "data": data},
        payload_bytes=_REQID_BYTES + len(data),
    )


def write_request(src: str, oid: ObjectID, offset: int, data: bytes,
                  req_id: int, dst: Optional[str] = None) -> Packet:
    """Store ``data`` at (oid, offset)."""
    return Packet(
        kind=MSG_WRITE_REQ,
        src=src,
        dst=dst,
        oid=oid,
        payload={"offset": offset, "data": data, "req_id": req_id},
        payload_bytes=_ADDR_BYTES + _REQID_BYTES + len(data),
    )


def write_ack(request: Packet, responder: str) -> Packet:
    """Build the acknowledgement for a write request."""
    return Packet(
        kind=MSG_WRITE_ACK,
        src=responder,
        dst=request.src,
        payload={"req_id": request.payload["req_id"]},
        payload_bytes=_REQID_BYTES,
    )


# -- batched coherence packets ------------------------------------------------
#
# The coherence data plane batches at the packet boundary: one acquire
# packet can request many objects (a sequential-scan reader), one grant
# packet can answer many requests, and one probe packet can carry the
# whole invalidation fan-in for a target.  Every entry is a plain dict so
# handlers iterate without a second vocabulary.


def acquire_packet(src: str, home: str, perm: str,
                   reqs: List[Dict[str, Any]]) -> Packet:
    """Request cached copies of every ``{"oid", "req_id"[, "upgrade"]}``
    entry in ``reqs`` with permission ``perm`` from ``home``."""
    return Packet(
        kind=MSG_ACQUIRE,
        src=src,
        dst=home,
        payload={"perm": perm, "reqs": reqs},
        payload_bytes=COHERENCE_ENTRY_BYTES * len(reqs),
    )


def grant_packet(responder: str, requester: str,
                 grants: List[Dict[str, Any]]) -> Packet:
    """Answer one or more acquisitions; each ``{"req_id", "oid", "perm",
    "data"}`` entry charges its data bytes (``data=None`` for an upgrade
    grant that moves no data)."""
    data_bytes = sum(len(g["data"]) for g in grants if g.get("data") is not None)
    return Packet(
        kind=MSG_GRANT,
        src=responder,
        dst=requester,
        payload={"grants": grants},
        payload_bytes=COHERENCE_ENTRY_BYTES * len(grants) + data_bytes,
    )


def release_packet(src: str, home: str, oid: ObjectID, req_id: int,
                   perm: str, data: Optional[bytes] = None) -> Packet:
    """Give a cached copy back to ``home``: a voluntary writeback or a
    capacity eviction.  ``data`` rides along only when the copy is dirty
    (a clean release just tells the directory to forget the holder)."""
    payload: Dict[str, Any] = {"req_id": req_id, "perm": perm}
    payload_bytes = COHERENCE_ENTRY_BYTES
    if data is not None:
        payload["data"] = data
        payload_bytes += len(data)
    return Packet(
        kind=MSG_RELEASE,
        src=src,
        dst=home,
        oid=oid,
        payload=payload,
        payload_bytes=payload_bytes,
    )


def probe_packet(home: str, target: str,
                 probes: List[Dict[str, Any]]) -> Packet:
    """Tell ``target`` to downgrade/invalidate every ``{"oid",
    "req_key", "downgrade_to"}`` entry in one wire packet."""
    return Packet(
        kind=MSG_PROBE_INVALIDATE,
        src=home,
        dst=target,
        payload={"probes": probes},
        payload_bytes=COHERENCE_ENTRY_BYTES * len(probes),
    )


def probe_ack_packet(target: str, home: str,
                     acks: List[Dict[str, Any]]) -> Packet:
    """Acknowledge a (batched) probe; entries may carry dirty writeback
    data and the ``kept_shared`` downgrade marker."""
    data_bytes = sum(len(a["data"]) for a in acks if a.get("data") is not None)
    return Packet(
        kind=MSG_PROBE_ACK,
        src=target,
        dst=home,
        payload={"acks": acks},
        payload_bytes=COHERENCE_ENTRY_BYTES * len(acks) + data_bytes,
    )
