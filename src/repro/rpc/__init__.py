"""The RPC baseline stack: serializer, stubs, middleware, and the
Wang-et-al ref-RPC variant — everything the paper argues against,
implemented faithfully enough to lose fairly."""

from .middleware import LoadBalancer, ResolvingClient, ServiceRegistry
from .refrpc import RefRpcClient, RefRpcServer, RemoteRef
from .serializer import (
    SerializationClock,
    SerializeError,
    decode,
    encode,
    encoded_size,
)
from .stubs import RpcClient, RpcError, RpcServer, RpcTimeout

__all__ = [
    "encode",
    "decode",
    "encoded_size",
    "SerializeError",
    "SerializationClock",
    "RpcServer",
    "RpcClient",
    "RpcError",
    "RpcTimeout",
    "ServiceRegistry",
    "ResolvingClient",
    "LoadBalancer",
    "RemoteRef",
    "RefRpcServer",
    "RefRpcClient",
]
