"""The RPC baseline: clients, servers, and call-by-value semantics.

This is the incumbent the paper argues against: location-centric
(callers name an *endpoint*), compute-centric (the function runs where
the server is, full stop), and call-by-value (arguments and returns are
serialized in their entirety and shipped both ways).

The stack is faithful about costs: arguments are *actually* encoded with
:mod:`repro.rpc.serializer` (so wire sizes are real), marshalling time
is charged to the simulated clock on both sides, and servers have a
bounded pool of worker slots so an overloaded Bob queues requests — the
§2 scenario.
"""

from __future__ import annotations

import inspect
import itertools
from typing import Any, Callable, Dict, Optional, Tuple

from ..sim import AnyOf, Future, Resource, Simulator, Timeout, Tracer
from ..net.host import Host
from ..net.packet import Packet
from .serializer import SerializationClock, decode, encode

__all__ = ["RpcServer", "RpcClient", "RpcError", "RpcTimeout", "RpcMethod"]

KIND_CALL = "rpc.call"
KIND_REPLY = "rpc.reply"

_call_ids = itertools.count(1)

# handler(args) -> (result, compute_us); generators may yield sim waitables.
RpcMethod = Callable[..., Any]


class RpcError(Exception):
    """Raised for unknown methods, remote faults, or misuse."""


class RpcTimeout(RpcError):
    """The reply did not arrive in time."""


class RpcServer:
    """An RPC endpoint: named methods, worker slots, marshalling costs.

    Methods are plain callables ``fn(**args) -> result``; their compute
    time is declared at registration (``compute_us``) or computed per
    call via ``compute_us_fn(args)``, and is charged to the simulated
    clock while a worker slot is held.
    """

    def __init__(self, host: Host, workers: int = 4,
                 clock: Optional[SerializationClock] = None,
                 tracer: Optional[Tracer] = None):
        self.host = host
        self.sim: Simulator = host.sim
        self.clock = clock if clock is not None else SerializationClock()
        self.tracer = tracer or Tracer()
        self.workers = Resource(self.sim, workers, name=f"{host.name}.rpc-workers")
        self._methods: Dict[str, Tuple[RpcMethod, Callable[[dict], float]]] = {}
        host.on(KIND_CALL, self._on_call)

    def register(self, name: str, fn: RpcMethod, compute_us: float = 0.0,
                 compute_us_fn: Optional[Callable[[dict], float]] = None) -> None:
        """Expose ``fn`` as method ``name``.

        ``compute_us`` (or the per-call ``compute_us_fn``) is the
        simulated execution time charged while holding a worker slot.
        """
        if name in self._methods:
            raise RpcError(f"method {name!r} already registered on {self.host.name}")
        cost_fn = compute_us_fn if compute_us_fn is not None else (lambda args: compute_us)
        self._methods[name] = (fn, cost_fn)

    def _on_call(self, packet: Packet) -> None:
        self.sim.spawn(self._serve(packet), name=f"rpc-serve-{packet.uid}")

    def _serve(self, packet: Packet):
        method_name = packet.payload["method"]
        call_id = packet.payload["call_id"]
        wire_args = packet.payload["args"]
        yield self.workers.acquire()
        try:
            # Deserialize the arguments: a real decode walk plus the
            # simulated time it costs at this byte count.
            yield Timeout(self.clock.deserialize_us(len(wire_args)))
            args = decode(wire_args)
            entry = self._methods.get(method_name)
            if entry is None:
                yield from self._reply_error(packet, call_id,
                                             f"no such method {method_name!r}")
                return
            fn, cost_fn = entry
            yield Timeout(cost_fn(args))
            try:
                if inspect.isgeneratorfunction(fn):
                    # Generator methods may perform their own simulated
                    # waits — including nested RPC calls to other hosts.
                    result = yield from fn(**args)
                else:
                    result = fn(**args)
            except Exception as exc:  # application fault -> RPC error reply
                yield from self._reply_error(packet, call_id, str(exc))
                return
            wire_result = encode(result)
            yield Timeout(self.clock.serialize_us(len(wire_result)))
            self.tracer.count("rpc.served")
            self.host.send(Packet(
                kind=KIND_REPLY, src=self.host.name, dst=packet.src,
                payload={"call_id": call_id, "ok": True, "result": wire_result},
                payload_bytes=16 + len(wire_result),
            ))
        finally:
            self.workers.release()

    def _reply_error(self, packet: Packet, call_id: int, message: str):
        self.tracer.count("rpc.faulted")
        wire = encode(message)
        yield Timeout(self.clock.serialize_us(len(wire)))
        self.host.send(Packet(
            kind=KIND_REPLY, src=self.host.name, dst=packet.src,
            payload={"call_id": call_id, "ok": False, "result": wire},
            payload_bytes=16 + len(wire),
        ))


class RpcClient:
    """Caller-side stub: serialize, send, await, deserialize."""

    def __init__(self, host: Host, timeout_us: float = 1_000_000.0,
                 clock: Optional[SerializationClock] = None,
                 tracer: Optional[Tracer] = None):
        self.host = host
        self.sim: Simulator = host.sim
        self.timeout_us = timeout_us
        self.clock = clock if clock is not None else SerializationClock()
        self.tracer = tracer or Tracer()
        self._pending: Dict[int, Future] = {}
        host.on(KIND_REPLY, self._on_reply)

    def _on_reply(self, packet: Packet) -> None:
        future = self._pending.pop(packet.payload["call_id"], None)
        if future is not None and not future.done:
            future.set_result(packet)

    def call(self, endpoint: str, method: str, **args: Any):
        """Process: invoke ``method`` at ``endpoint`` with ``args``.

        Returns the deserialized result; raises :class:`RpcError` on a
        remote fault and :class:`RpcTimeout` if no reply arrives.
        """
        start = self.sim.now
        wire_args = encode(args)
        yield Timeout(self.clock.serialize_us(len(wire_args)))
        call_id = next(_call_ids)
        future = Future(self.sim, name=f"rpc-{call_id}")
        self._pending[call_id] = future
        self.host.send(Packet(
            kind=KIND_CALL, src=self.host.name, dst=endpoint,
            payload={"call_id": call_id, "method": method, "args": wire_args},
            payload_bytes=24 + len(wire_args),
        ))
        index, reply = yield AnyOf([future, Timeout(self.timeout_us)])
        if index == 1:
            self._pending.pop(call_id, None)
            self.tracer.count("rpc.timeout")
            raise RpcTimeout(f"{endpoint}.{method} timed out after {self.timeout_us}us")
        wire_result = reply.payload["result"]
        yield Timeout(self.clock.deserialize_us(len(wire_result)))
        result = decode(wire_result)
        self.tracer.sample("rpc.call_us", self.sim.now - start, self.sim.now)
        if not reply.payload["ok"]:
            self.tracer.count("rpc.remote_fault")
            raise RpcError(f"{endpoint}.{method}: {result}")
        self.tracer.count("rpc.ok")
        return result
