"""RPC middleware: discovery services and load balancers.

§1: "data center operators often deploy discovery services, load
balancers, or other forms of middleware.  These extra indirection layers
make the execution endpoint abstract, but at the cost of increased
latency and added system complexity."

Both pieces are real network participants, so their indirection cost
shows up honestly in the simulated latency:

* :class:`ServiceRegistry` — a name service: backends register service
  names, clients resolve a name to an endpoint (one extra RPC on the
  first call; clients cache).
* :class:`LoadBalancer` — a proxy endpoint that forwards calls to
  backends round-robin; every call pays the extra network hop and the
  balancer's per-packet processing time.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..sim import Simulator, Tracer
from ..net.host import Host
from ..net.packet import Packet
from .stubs import KIND_CALL, KIND_REPLY, RpcClient, RpcError, RpcServer

__all__ = ["ServiceRegistry", "ResolvingClient", "LoadBalancer"]


class ServiceRegistry:
    """A name service implemented *as an RPC server* (it is middleware
    made of the very mechanism it serves)."""

    def __init__(self, host: Host):
        self.host = host
        self._endpoints: Dict[str, List[str]] = {}
        self._rr: Dict[str, itertools.cycle] = {}
        self.server = RpcServer(host, workers=8)
        self.server.register("register", self._register, compute_us=1.0)
        self.server.register("resolve", self._resolve, compute_us=1.0)

    def _register(self, service: str, backend: str) -> bool:
        backends = self._endpoints.setdefault(service, [])
        if backend not in backends:
            backends.append(backend)
            self._rr[service] = itertools.cycle(list(backends))
        return True

    def _resolve(self, service: str) -> str:
        backends = self._endpoints.get(service)
        if not backends:
            raise ValueError(f"no backends registered for {service!r}")
        return next(self._rr[service])

    def known_services(self) -> List[str]:
        """Sorted names of registered services."""
        return sorted(self._endpoints)


class ResolvingClient:
    """An RPC client that goes through the registry: resolve, then call.

    The first call to a service pays the resolution round trip; the
    endpoint is cached afterwards (and re-resolved on fault), which is
    exactly the indirection/latency trade §1 describes.
    """

    def __init__(self, host: Host, registry_endpoint: str,
                 timeout_us: float = 1_000_000.0):
        self.client = RpcClient(host, timeout_us=timeout_us)
        self.registry_endpoint = registry_endpoint
        self._cache: Dict[str, str] = {}
        self.resolutions = 0

    def call(self, service: str, method: str, **args):
        """Process: resolve ``service`` (cached) and invoke ``method``."""
        endpoint = self._cache.get(service)
        if endpoint is None:
            endpoint = yield from self.client.call(
                self.registry_endpoint, "resolve", service=service)
            self.resolutions += 1
            self._cache[service] = endpoint
        try:
            result = yield from self.client.call(endpoint, method, **args)
        except RpcError:
            # Stale endpoint: drop the cache entry and re-resolve once.
            self._cache.pop(service, None)
            endpoint = yield from self.client.call(
                self.registry_endpoint, "resolve", service=service)
            self.resolutions += 1
            self._cache[service] = endpoint
            result = yield from self.client.call(endpoint, method, **args)
        return result


class LoadBalancer:
    """An L7 proxy: accepts RPC calls and relays them to backends.

    Adds one hop each way plus ``proxy_delay_us`` of processing — the
    modelled cost of making the endpoint abstract.
    """

    def __init__(self, host: Host, backends: List[str],
                 proxy_delay_us: float = 5.0, tracer: Optional[Tracer] = None):
        if not backends:
            raise RpcError("load balancer needs at least one backend")
        self.host = host
        self.sim: Simulator = host.sim
        self.backends = list(backends)
        self.proxy_delay_us = proxy_delay_us
        self.tracer = tracer or Tracer()
        self._next = 0
        # call_id -> original caller, so replies can be relayed back.
        self._inflight: Dict[int, str] = {}
        host.on(KIND_CALL, self._on_call)
        host.on(KIND_REPLY, self._on_reply)

    def _pick_backend(self) -> str:
        backend = self.backends[self._next % len(self.backends)]
        self._next += 1
        return backend

    def _on_call(self, packet: Packet) -> None:
        self.tracer.count("lb.forwarded")
        self._inflight[packet.payload["call_id"]] = packet.src
        backend = self._pick_backend()
        self.sim.schedule(self.proxy_delay_us, self._relay, packet, backend)

    def _relay(self, packet: Packet, backend: str) -> None:
        self.host.send(Packet(
            kind=KIND_CALL, src=self.host.name, dst=backend,
            payload=packet.payload, payload_bytes=packet.payload_bytes,
        ))

    def _on_reply(self, packet: Packet) -> None:
        caller = self._inflight.pop(packet.payload["call_id"], None)
        if caller is None:
            self.tracer.count("lb.orphan_reply")
            return
        self.tracer.count("lb.replied")
        self.sim.schedule(self.proxy_delay_us, self._relay_reply, packet, caller)

    def _relay_reply(self, packet: Packet, caller: str) -> None:
        self.host.send(Packet(
            kind=KIND_REPLY, src=self.host.name, dst=caller,
            payload=packet.payload, payload_bytes=packet.payload_bytes,
        ))
