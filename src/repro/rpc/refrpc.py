"""Ref-RPC: the Wang et al. (HotOS '21) halfway point.

§5: "Recently, Wang et al. proposed an extension to RPC that passes
first class immutable references as well as values in procedure calls...
But it only takes us halfway: RPC remains compute-centric and
programmers must indicate where code should execute."

This module implements that design so experiment E7 can compare all
four invocation models.  Relative to plain RPC:

* arguments may be :class:`RemoteRef` markers naming immutable objects;
* the *system* (server side) fetches referenced objects from wherever
  they live — a byte-level image transfer, no serialization walk;
* immutability makes fetched objects cacheable across calls, avoiding
  repeated copies (the Wang et al. win);

and, crucially, what it does *not* change: the caller still names the
execution endpoint.  A capable edge device (Dave) cannot pull the
computation to itself.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..core.costmodel import CostModel, DEFAULT_COST_MODEL
from ..core.objectid import ObjectID
from ..sim import AnyOf, Future, Resource, Simulator, Timeout, Tracer
from ..net.host import Host
from ..net.packet import Packet
from .serializer import SerializationClock, decode, encode
from .stubs import RpcError, RpcTimeout

__all__ = ["RemoteRef", "RefRpcServer", "RefRpcClient"]

KIND_REFCALL = "refrpc.call"
KIND_REFREPLY = "refrpc.reply"

_call_ids = itertools.count(1)

# Locator: oid -> (holder host name, object size in bytes).
Locator = Callable[[ObjectID], Tuple[str, int]]
# Distance oracle between host names, in link hops.
DistanceFn = Callable[[str, str], int]


@dataclass(frozen=True)
class RemoteRef:
    """An immutable reference argument: 'use the object with this ID'."""

    oid: ObjectID

    def wire(self) -> str:
        """The hex wire form of the reference."""
        return str(self.oid)

    @classmethod
    def from_wire(cls, text: str) -> "RemoteRef":
        """Rebuild from the wire descriptor."""
        return cls(ObjectID.from_hex(text))


def _split_args(args: Dict[str, Any]) -> Tuple[Dict[str, Any], Dict[str, str]]:
    """Separate by-value arguments from reference arguments."""
    values = {}
    refs = {}
    for key, value in args.items():
        if isinstance(value, RemoteRef):
            refs[key] = value.wire()
        else:
            values[key] = value
    return values, refs


class RefRpcServer:
    """A compute-pinned endpoint that resolves reference arguments.

    ``fetch_object`` is supplied by the surrounding system (tests wire
    it to object spaces): given an oid it returns the object's bytes.
    The server charges simulated time for the transfer (wire time over
    the hop distance plus byte-copy in/out — *no* marshalling walk) and
    caches fetched immutable objects.
    """

    def __init__(self, host: Host, locator: Locator, distance: DistanceFn,
                 fetch_object: Callable[[ObjectID], bytes],
                 workers: int = 4,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 clock: Optional[SerializationClock] = None,
                 tracer: Optional[Tracer] = None):
        self.host = host
        self.sim: Simulator = host.sim
        self.locator = locator
        self.distance = distance
        self.fetch_object = fetch_object
        self.cost_model = cost_model
        self.clock = clock if clock is not None else SerializationClock()
        self.tracer = tracer or Tracer()
        self.workers = Resource(self.sim, workers, name=f"{host.name}.refrpc-workers")
        self._methods: Dict[str, Tuple[Callable, float]] = {}
        self._ref_cache: Dict[ObjectID, bytes] = {}
        self.bytes_fetched = 0
        host.on(KIND_REFCALL, self._on_call)

    def register(self, name: str, fn: Callable, compute_us: float = 0.0) -> None:
        """Register a method/entry under ``name``."""
        if name in self._methods:
            raise RpcError(f"method {name!r} already registered on {self.host.name}")
        self._methods[name] = (fn, compute_us)

    def _on_call(self, packet: Packet) -> None:
        self.sim.spawn(self._serve(packet), name=f"refrpc-serve-{packet.uid}")

    def _fetch_ref(self, oid: ObjectID) -> Tuple[bytes, float]:
        """Resolve one reference; returns (data, simulated stage-in time)."""
        cached = self._ref_cache.get(oid)
        if cached is not None:
            self.tracer.count("refrpc.ref_cache_hit")
            return cached, 0.0
        holder, size = self.locator(oid)
        hops = self.distance(holder, self.host.name)
        estimate = self.cost_model.fetch_transfer(size, hops=max(hops, 1))
        data = self.fetch_object(oid)
        self._ref_cache[oid] = data
        self.bytes_fetched += size
        self.tracer.count("refrpc.ref_fetched")
        return data, estimate.total_us if hops > 0 else 0.0

    def _serve(self, packet: Packet):
        call_id = packet.payload["call_id"]
        wire_values = packet.payload["values"]
        ref_args: Dict[str, str] = packet.payload["refs"]
        yield self.workers.acquire()
        try:
            yield Timeout(self.clock.deserialize_us(len(wire_values)))
            args = decode(wire_values)
            # Stage in every referenced object, in parallel: the slowest
            # fetch bounds the stage-in latency.
            stage_in_us = 0.0
            for key, wire_ref in ref_args.items():
                data, fetch_us = self._fetch_ref(RemoteRef.from_wire(wire_ref).oid)
                args[key] = data
                stage_in_us = max(stage_in_us, fetch_us)
            if stage_in_us > 0:
                yield Timeout(stage_in_us)
            entry = self._methods.get(packet.payload["method"])
            if entry is None:
                self.host.send(self._reply(packet, call_id, False,
                                           f"no such method {packet.payload['method']!r}"))
                return
            fn, compute_us = entry
            yield Timeout(compute_us)
            try:
                result = fn(**args)
            except Exception as exc:
                self.host.send(self._reply(packet, call_id, False, str(exc)))
                return
            self.tracer.count("refrpc.served")
            self.host.send(self._reply(packet, call_id, True, result))
        finally:
            self.workers.release()

    def _reply(self, packet: Packet, call_id: int, ok: bool, result: Any) -> Packet:
        wire = encode(result)
        return Packet(
            kind=KIND_REFREPLY, src=self.host.name, dst=packet.src,
            payload={"call_id": call_id, "ok": ok, "result": wire},
            payload_bytes=16 + len(wire),
        )


class RefRpcClient:
    """Caller stub: values are serialized, references travel as 24-byte
    descriptors no matter how large the referenced object is."""

    def __init__(self, host: Host, timeout_us: float = 1_000_000.0,
                 clock: Optional[SerializationClock] = None,
                 tracer: Optional[Tracer] = None):
        self.host = host
        self.sim: Simulator = host.sim
        self.timeout_us = timeout_us
        self.clock = clock if clock is not None else SerializationClock()
        self.tracer = tracer or Tracer()
        self._pending: Dict[int, Future] = {}
        host.on(KIND_REFREPLY, self._on_reply)

    def _on_reply(self, packet: Packet) -> None:
        future = self._pending.pop(packet.payload["call_id"], None)
        if future is not None and not future.done:
            future.set_result(packet)

    def call(self, endpoint: str, method: str, **args: Any):
        """Process: invoke ``method`` at ``endpoint``; :class:`RemoteRef`
        arguments are passed by reference, the rest by value."""
        start = self.sim.now
        values, refs = _split_args(args)
        wire_values = encode(values)
        yield Timeout(self.clock.serialize_us(len(wire_values)))
        call_id = next(_call_ids)
        future = Future(self.sim, name=f"refrpc-{call_id}")
        self._pending[call_id] = future
        self.host.send(Packet(
            kind=KIND_REFCALL, src=self.host.name, dst=endpoint,
            payload={"call_id": call_id, "method": method,
                     "values": wire_values, "refs": refs},
            payload_bytes=24 + len(wire_values) + 24 * len(refs),
        ))
        index, reply = yield AnyOf([future, Timeout(self.timeout_us)])
        if index == 1:
            self._pending.pop(call_id, None)
            raise RpcTimeout(f"{endpoint}.{method} timed out")
        wire_result = reply.payload["result"]
        yield Timeout(self.clock.deserialize_us(len(wire_result)))
        result = decode(wire_result)
        self.tracer.sample("refrpc.call_us", self.sim.now - start, self.sim.now)
        if not reply.payload["ok"]:
            raise RpcError(f"{endpoint}.{method}: {result}")
        return result
