"""Wire serialization for the RPC baseline.

RPC systems must flatten structured arguments into bytes and rebuild
them on the far side — the cost the paper's §2 pins at "as much as 70%
of the processing time" for sparse-model serving.  This is a *real*
serializer (tag-length-value over Python scalars, bytes, lists, dicts),
not a stub: encode and decode genuinely walk the value, so the
pytest-benchmark numbers for E4 measure actual work, while the
:class:`SerializationClock` translates byte counts into simulated time
using the shared cost model.

Contrast with :meth:`repro.core.objects.MemObject.to_wire`: an object
image copy is a single byte-level move with no per-field walk.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple, Union

from ..core.costmodel import CostModel, DEFAULT_COST_MODEL

__all__ = ["encode", "decode", "encoded_size", "SerializeError", "SerializationClock"]


class SerializeError(Exception):
    """Raised for unsupported types or corrupt wire data."""


# Type tags.
_T_NONE = 0
_T_INT = 1
_T_FLOAT = 2
_T_BYTES = 3
_T_STR = 4
_T_LIST = 5
_T_DICT = 6
_T_BOOL = 7


def encode(value: Any) -> bytes:
    """Serialize ``value`` into a self-describing byte string."""
    parts: List[bytes] = []
    _encode_into(value, parts)
    return b"".join(parts)


def _encode_into(value: Any, parts: List[bytes]) -> None:
    if value is None:
        parts.append(struct.pack(">B", _T_NONE))
    elif isinstance(value, bool):  # must precede int check
        parts.append(struct.pack(">BB", _T_BOOL, int(value)))
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        parts.append(struct.pack(">BI", _T_INT, len(raw)))
        parts.append(raw)
    elif isinstance(value, float):
        parts.append(struct.pack(">Bd", _T_FLOAT, value))
    elif isinstance(value, (bytes, bytearray)):
        parts.append(struct.pack(">BI", _T_BYTES, len(value)))
        parts.append(bytes(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        parts.append(struct.pack(">BI", _T_STR, len(raw)))
        parts.append(raw)
    elif isinstance(value, (list, tuple)):
        parts.append(struct.pack(">BI", _T_LIST, len(value)))
        for item in value:
            _encode_into(item, parts)
    elif isinstance(value, dict):
        parts.append(struct.pack(">BI", _T_DICT, len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializeError(f"dict keys must be str, got {type(key).__name__}")
            _encode_into(key, parts)
            _encode_into(item, parts)
    else:
        raise SerializeError(f"unsupported type: {type(value).__name__}")


def decode(raw: Union[bytes, bytearray]) -> Any:
    """Rebuild the value encoded by :func:`encode`."""
    value, consumed = _decode_from(bytes(raw), 0)
    if consumed != len(raw):
        raise SerializeError(f"trailing bytes: {len(raw) - consumed}")
    return value


def _decode_from(raw: bytes, at: int) -> Tuple[Any, int]:
    if at >= len(raw):
        raise SerializeError("truncated value")
    tag = raw[at]
    at += 1
    if tag == _T_NONE:
        return None, at
    if tag == _T_BOOL:
        return bool(raw[at]), at + 1
    if tag == _T_FLOAT:
        return struct.unpack_from(">d", raw, at)[0], at + 8
    if tag in (_T_INT, _T_BYTES, _T_STR, _T_LIST, _T_DICT):
        (length,) = struct.unpack_from(">I", raw, at)
        at += 4
        if tag == _T_INT:
            end = at + length
            return int.from_bytes(raw[at:end], "big", signed=True), end
        if tag == _T_BYTES:
            end = at + length
            if end > len(raw):
                raise SerializeError("truncated bytes")
            return raw[at:end], end
        if tag == _T_STR:
            end = at + length
            return raw[at:end].decode("utf-8"), end
        if tag == _T_LIST:
            items = []
            for _ in range(length):
                item, at = _decode_from(raw, at)
                items.append(item)
            return items, at
        entries: Dict[str, Any] = {}
        for _ in range(length):
            key, at = _decode_from(raw, at)
            value, at = _decode_from(raw, at)
            entries[key] = value
        return entries, at
    raise SerializeError(f"unknown tag {tag} at offset {at - 1}")


def encoded_size(value: Any) -> int:
    """Wire size of ``value`` without keeping the encoding around."""
    return len(encode(value))


class SerializationClock:
    """Translates marshalling work into simulated microseconds.

    The RPC stack charges ``serialize_us``/``deserialize_us`` per
    message; the object-space stack charges ``byte_copy_us`` instead.
    Deserialization is the expensive side (allocation, pointer fix-up),
    per the §2 "70% of processing time" evidence.
    """

    def __init__(self, cost_model: CostModel = DEFAULT_COST_MODEL):
        self.cost_model = cost_model
        self.bytes_serialized = 0
        self.bytes_deserialized = 0

    def serialize_us(self, nbytes: int) -> float:
        """Simulated serialization time for ``nbytes``."""
        self.bytes_serialized += nbytes
        return self.cost_model.serialize_time_us(nbytes)

    def deserialize_us(self, nbytes: int) -> float:
        """Simulated deserialization time for ``nbytes``."""
        self.bytes_deserialized += nbytes
        return self.cost_model.deserialize_time_us(nbytes)

    def byte_copy_us(self, nbytes: int) -> float:
        """Simulated memcpy time for ``nbytes``."""
        return self.cost_model.byte_copy_time_us(nbytes)
