"""Convergent replicated data types (CRDTs).

§5: "we will explore how a whole-system view of object identity and
references can interface with languages to support patterns for weakly
consistent replication, such as auto-merging progressive objects like
CRDTs during data movement."

These are state-based (convergent) CRDTs: each replica mutates its local
state and :meth:`merge` is a join — commutative, associative, and
idempotent — so replicas converge regardless of delivery order or
duplication (properties the hypothesis test suite checks).  Every type
serializes via the wire codec so instances can live inside objects and
merge when replicas of an object meet during movement.
"""

from __future__ import annotations

from typing import Any, Dict, Set, Tuple

from ..rpc.serializer import decode, encode

__all__ = ["GCounter", "PNCounter", "LWWRegister", "ORSet", "CRDTError"]


class CRDTError(Exception):
    """Raised on invalid CRDT operations (negative increments, type
    mismatches in merge...)."""


class GCounter:
    """Grow-only counter: per-replica monotone counts, join = elementwise max."""

    def __init__(self, replica_id: str):
        if not replica_id:
            raise CRDTError("replica id must be non-empty")
        self.replica_id = replica_id
        self._counts: Dict[str, int] = {}

    def increment(self, amount: int = 1) -> None:
        """Increase this replica's count by ``amount``."""
        if amount < 0:
            raise CRDTError("GCounter cannot decrease")
        if amount == 0:
            # A zero increment must not create a {replica: 0} entry:
            # max-merge never propagates zeros, so such an entry would
            # keep structurally-equal states comparing unequal forever.
            return
        self._counts[self.replica_id] = self._counts.get(self.replica_id, 0) + amount

    @property
    def value(self) -> int:
        """The current value."""
        return sum(self._counts.values())

    def merge(self, other: "GCounter") -> None:
        """Join other's state into ours (elementwise max)."""
        if not isinstance(other, GCounter):
            raise CRDTError(f"cannot merge GCounter with {type(other).__name__}")
        for replica, count in other._counts.items():
            if count > self._counts.get(replica, 0):
                self._counts[replica] = count

    def to_bytes(self) -> bytes:
        """Serialize to the wire byte encoding."""
        return encode({"t": "g", "c": self._counts})

    @classmethod
    def from_bytes(cls, raw: bytes, replica_id: str) -> "GCounter":
        """Rebuild an instance from its wire byte encoding."""
        payload = decode(raw)
        if payload.get("t") != "g":
            raise CRDTError("not a GCounter encoding")
        counter = cls(replica_id)
        counter._counts = dict(payload["c"])
        return counter

    def copy(self) -> "GCounter":
        """Return an independent deep copy of this instance."""
        twin = GCounter(self.replica_id)
        twin._counts = dict(self._counts)
        return twin

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GCounter) and other._counts == self._counts

    def __repr__(self) -> str:
        return f"GCounter(value={self.value}, replicas={len(self._counts)})"


class PNCounter:
    """Increment/decrement counter: a pair of GCounters."""

    def __init__(self, replica_id: str):
        self.replica_id = replica_id
        self._pos = GCounter(replica_id)
        self._neg = GCounter(replica_id)

    def increment(self, amount: int = 1) -> None:
        """Increase this replica's count by ``amount``."""
        if amount < 0:
            raise CRDTError("use decrement for negative changes")
        self._pos.increment(amount)

    def decrement(self, amount: int = 1) -> None:
        """Decrease the value by ``amount`` (tracked separately)."""
        if amount < 0:
            raise CRDTError("decrement takes a non-negative amount")
        self._neg.increment(amount)

    @property
    def value(self) -> int:
        """The current value."""
        return self._pos.value - self._neg.value

    def merge(self, other: "PNCounter") -> None:
        """Join another replica's state into this one (CvRDT join)."""
        if not isinstance(other, PNCounter):
            raise CRDTError(f"cannot merge PNCounter with {type(other).__name__}")
        self._pos.merge(other._pos)
        self._neg.merge(other._neg)

    def to_bytes(self) -> bytes:
        """Serialize to the wire byte encoding."""
        return encode({"t": "pn", "p": self._pos._counts, "n": self._neg._counts})

    @classmethod
    def from_bytes(cls, raw: bytes, replica_id: str) -> "PNCounter":
        """Rebuild an instance from its wire byte encoding."""
        payload = decode(raw)
        if payload.get("t") != "pn":
            raise CRDTError("not a PNCounter encoding")
        counter = cls(replica_id)
        counter._pos._counts = dict(payload["p"])
        counter._neg._counts = dict(payload["n"])
        return counter

    def copy(self) -> "PNCounter":
        """Return an independent deep copy of this instance."""
        twin = PNCounter(self.replica_id)
        twin._pos = self._pos.copy()
        twin._neg = self._neg.copy()
        return twin

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, PNCounter)
                and other._pos == self._pos and other._neg == self._neg)

    def __repr__(self) -> str:
        return f"PNCounter(value={self.value})"


class LWWRegister:
    """Last-writer-wins register.

    Writes carry a (timestamp, replica_id) pair; merge keeps the larger
    pair, breaking timestamp ties by replica id so the join stays
    deterministic and commutative.
    """

    def __init__(self, replica_id: str):
        self.replica_id = replica_id
        self._stamp: Tuple[float, str] = (float("-inf"), "")
        self._value: Any = None

    def set(self, value: Any, timestamp: float) -> None:
        """Record a write at ``timestamp`` (the caller's clock — in the
        simulation, ``sim.now``)."""
        stamp = (timestamp, self.replica_id)
        if stamp > self._stamp:
            self._stamp = stamp
            self._value = value

    @property
    def value(self) -> Any:
        """The current value."""
        return self._value

    @property
    def timestamp(self) -> float:
        """Timestamp of the winning write."""
        return self._stamp[0]

    def merge(self, other: "LWWRegister") -> None:
        """Join another replica's state into this one (CvRDT join)."""
        if not isinstance(other, LWWRegister):
            raise CRDTError(f"cannot merge LWWRegister with {type(other).__name__}")
        if other._stamp > self._stamp:
            self._stamp = other._stamp
            self._value = other._value

    def to_bytes(self) -> bytes:
        """Serialize to the wire byte encoding."""
        return encode({"t": "lww", "ts": self._stamp[0], "rid": self._stamp[1],
                       "v": self._value})

    @classmethod
    def from_bytes(cls, raw: bytes, replica_id: str) -> "LWWRegister":
        """Rebuild an instance from its wire byte encoding."""
        payload = decode(raw)
        if payload.get("t") != "lww":
            raise CRDTError("not a LWWRegister encoding")
        register = cls(replica_id)
        register._stamp = (payload["ts"], payload["rid"])
        register._value = payload["v"]
        return register

    def copy(self) -> "LWWRegister":
        """Return an independent deep copy of this instance."""
        twin = LWWRegister(self.replica_id)
        twin._stamp = self._stamp
        twin._value = self._value
        return twin

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, LWWRegister)
                and other._stamp == self._stamp and other._value == self._value)

    def __repr__(self) -> str:
        return f"LWWRegister(value={self._value!r}, ts={self._stamp[0]})"


class ORSet:
    """Observed-remove set.

    Adds tag each element with a unique (replica, counter) pair; remove
    deletes the tags it has *observed*.  Concurrent add wins over
    remove, the standard OR-Set semantics.
    """

    def __init__(self, replica_id: str):
        if not replica_id:
            raise CRDTError("replica id must be non-empty")
        self.replica_id = replica_id
        self._next_tag = 0
        # element -> set of live tags; tombstones collect removed tags.
        self._entries: Dict[Any, Set[Tuple[str, int]]] = {}
        self._tombstones: Set[Tuple[str, int]] = set()

    def add(self, element: Any) -> None:
        """Add an element with a fresh unique tag."""
        tag = (self.replica_id, self._next_tag)
        self._next_tag += 1
        self._entries.setdefault(element, set()).add(tag)

    def remove(self, element: Any) -> None:
        """Remove every currently observed tag of ``element``."""
        tags = self._entries.pop(element, set())
        self._tombstones |= tags

    def __contains__(self, element: Any) -> bool:
        return element in self._entries

    def elements(self) -> Set[Any]:
        """The set of currently present elements."""
        return set(self._entries)

    def merge(self, other: "ORSet") -> None:
        """Join another replica's state into this one (CvRDT join)."""
        if not isinstance(other, ORSet):
            raise CRDTError(f"cannot merge ORSet with {type(other).__name__}")
        self._tombstones |= other._tombstones
        merged: Dict[Any, Set[Tuple[str, int]]] = {}
        for source in (self._entries, other._entries):
            for element, tags in source.items():
                merged.setdefault(element, set()).update(tags)
        self._entries = {}
        for element, tags in merged.items():
            live = tags - self._tombstones
            if live:
                self._entries[element] = live
        # Keep tag counters ahead of anything we have seen from our own id.
        own = [tag[1] for tags in self._entries.values() for tag in tags
               if tag[0] == self.replica_id]
        own += [tag[1] for tag in self._tombstones if tag[0] == self.replica_id]
        if own:
            self._next_tag = max(self._next_tag, max(own) + 1)

    def to_bytes(self) -> bytes:
        """Serialize to the wire byte encoding."""
        entries = [
            [repr_key, [[rid, n] for rid, n in sorted(tags)]]
            for repr_key, tags in sorted(
                ((element, tags) for element, tags in self._entries.items()),
                key=lambda pair: str(pair[0]),
            )
        ]
        tombs = [[rid, n] for rid, n in sorted(self._tombstones)]
        return encode({"t": "or", "e": entries, "d": tombs, "n": self._next_tag})

    @classmethod
    def from_bytes(cls, raw: bytes, replica_id: str) -> "ORSet":
        """Rebuild an instance from its wire byte encoding."""
        payload = decode(raw)
        if payload.get("t") != "or":
            raise CRDTError("not an ORSet encoding")
        instance = cls(replica_id)
        instance._next_tag = payload["n"]
        for element, tags in payload["e"]:
            instance._entries[element] = {(rid, n) for rid, n in tags}
        instance._tombstones = {(rid, n) for rid, n in payload["d"]}
        return instance

    def copy(self) -> "ORSet":
        """Return an independent deep copy of this instance."""
        twin = ORSet(self.replica_id)
        twin._next_tag = self._next_tag
        twin._entries = {element: set(tags) for element, tags in self._entries.items()}
        twin._tombstones = set(self._tombstones)
        return twin

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ORSet)
                and other._entries == self._entries
                and other._tombstones == self._tombstones)

    def __repr__(self) -> str:
        return f"ORSet(elements={sorted(map(str, self._entries))})"
