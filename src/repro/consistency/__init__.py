"""Weakly consistent replication: CRDTs and gossip-based auto-merge."""

from .crdts import CRDTError, GCounter, LWWRegister, ORSet, PNCounter
from .replication import Replica, converge, gossip_round

__all__ = [
    "GCounter",
    "PNCounter",
    "LWWRegister",
    "ORSet",
    "CRDTError",
    "Replica",
    "gossip_round",
    "converge",
]
