"""Gossip replication of CRDT state across hosts.

The movement-time auto-merge of §5: replicas of a progressive object
exchange serialized CRDT state over the simulated network and join it
into their local copy.  Because the underlying types are convergent,
any gossip pattern (pairwise, ring, random) reaches the same fixed
point; the harness measures rounds-to-convergence and bytes shipped.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional

from ..sim import Future, Simulator, Tracer
from ..net.host import Host
from ..net.packet import Packet

__all__ = ["Replica", "gossip_round", "converge"]

KIND_SYNC = "crdt.sync"
KIND_SYNC_ACK = "crdt.sync_ack"

_sync_ids = itertools.count(1)


class Replica:
    """One host's replica of a CRDT instance.

    ``decode_merge`` is how incoming state joins local state — it is
    supplied by the CRDT type (e.g. ``GCounter.from_bytes`` + merge).
    """

    def __init__(self, host: Host, crdt: Any,
                 tracer: Optional[Tracer] = None):
        self.host = host
        self.sim: Simulator = host.sim
        self.crdt = crdt
        self.tracer = tracer or Tracer()
        self._pending: Dict[int, Future] = {}
        self.bytes_sent = 0
        self.merges = 0
        host.on(KIND_SYNC, self._on_sync)
        host.on(KIND_SYNC_ACK, self._on_ack)

    def _on_sync(self, packet: Packet) -> None:
        incoming = type(self.crdt).from_bytes(
            packet.payload["state"], self.crdt.replica_id)
        self.crdt.merge(incoming)
        self.merges += 1
        self.tracer.count("replica.merged")
        # Reply with our (now merged) state so one exchange symmetrizes.
        state = self.crdt.to_bytes()
        self.bytes_sent += len(state)
        self.host.send(Packet(
            kind=KIND_SYNC_ACK, src=self.host.name, dst=packet.src,
            payload={"sync_id": packet.payload["sync_id"], "state": state},
            payload_bytes=16 + len(state),
        ))

    def _on_ack(self, packet: Packet) -> None:
        future = self._pending.pop(packet.payload["sync_id"], None)
        if future is not None and not future.done:
            future.set_result(packet)

    def sync_with(self, peer: str):
        """Process: one symmetric state exchange with ``peer``.

        After it completes, both replicas hold the join of their states.
        """
        sync_id = next(_sync_ids)
        future = Future(self.sim, name=f"sync-{sync_id}")
        self._pending[sync_id] = future
        state = self.crdt.to_bytes()
        self.bytes_sent += len(state)
        self.tracer.count("replica.sync_started")
        self.host.send(Packet(
            kind=KIND_SYNC, src=self.host.name, dst=peer,
            payload={"sync_id": sync_id, "state": state},
            payload_bytes=16 + len(state),
        ))
        reply = yield future
        incoming = type(self.crdt).from_bytes(
            reply.payload["state"], self.crdt.replica_id)
        self.crdt.merge(incoming)
        self.merges += 1
        return True


def gossip_round(replicas: List[Replica], rng) -> "generator":
    """Process: every replica syncs with one random peer, sequentially
    (deterministic given the seeded rng)."""
    def _round():
        for replica in replicas:
            peers = [r for r in replicas if r is not replica]
            peer = rng.choice(peers)
            yield replica.sim.spawn(
                replica.sync_with(peer.host.name), name="gossip")
        return None
    return _round()


def converge(replicas: List[Replica], rng, max_rounds: int = 32,
             equal: Optional[Callable[[Any, Any], bool]] = None):
    """Process: gossip until every replica's state compares equal.

    Returns the number of rounds taken; raises if ``max_rounds`` is
    exhausted (convergence failure — a real bug, since these are CvRDTs).
    """
    if equal is None:
        equal = lambda a, b: a == b

    def _converged() -> bool:
        first = replicas[0].crdt
        return all(equal(first, replica.crdt) for replica in replicas[1:])

    def _drive():
        for round_number in range(1, max_rounds + 1):
            yield replicas[0].sim.spawn(gossip_round(replicas, rng), name="round")
            if _converged():
                return round_number
        raise AssertionError(f"no convergence after {max_rounds} gossip rounds")

    return _drive()
