"""Object discovery: how the network learns where objects live (§4).

Three schemes — decentralized E2E (ARP-like destination caches filled
by broadcast), SDN-controller-installed identity routes, and a sharded
controller directory with requester-side TTL leases — plus the workload
drivers that regenerate Figures 2 and 3 and the E18 sharding sweep.
"""

from .base import (
    ACCESS_BYTES,
    KIND_ACCESS_NACK,
    KIND_ACCESS_REQ,
    KIND_ACCESS_RSP,
    KIND_ADVERTISE,
    KIND_ADVERTISE_ACK,
    KIND_FIND,
    KIND_FOUND,
    KIND_LEASE_INVALIDATE,
    KIND_RESOLVE_REQ,
    KIND_RESOLVE_RSP,
    AccessRecord,
    DiscoveryError,
    ObjectHome,
    move_object,
)
from .controller import DirectoryController, IdentityAccessor, SdnController, advertise
from .e2e import E2EResolver
from .hybrid import HybridAccessor
from .sharded import (
    SCHEME_SHARDED,
    LeaseCachingResolver,
    ShardAdvertiser,
    ShardDirectory,
    ShardedSweepResult,
    ShardedTestbed,
    ShardMap,
    run_sharded_point,
)
from .workload import (
    SCHEME_CONTROLLER,
    SCHEME_E2E,
    SweepPoint,
    run_fig2_point,
    run_fig3_point,
)

__all__ = [
    "ObjectHome",
    "AccessRecord",
    "DiscoveryError",
    "move_object",
    "E2EResolver",
    "HybridAccessor",
    "DirectoryController",
    "SdnController",
    "IdentityAccessor",
    "advertise",
    "ShardMap",
    "ShardDirectory",
    "ShardAdvertiser",
    "LeaseCachingResolver",
    "ShardedTestbed",
    "ShardedSweepResult",
    "run_sharded_point",
    "SweepPoint",
    "run_fig2_point",
    "run_fig3_point",
    "SCHEME_E2E",
    "SCHEME_CONTROLLER",
    "SCHEME_SHARDED",
    "ACCESS_BYTES",
    "KIND_FIND",
    "KIND_FOUND",
    "KIND_ACCESS_REQ",
    "KIND_ACCESS_RSP",
    "KIND_ACCESS_NACK",
    "KIND_ADVERTISE",
    "KIND_ADVERTISE_ACK",
    "KIND_RESOLVE_REQ",
    "KIND_RESOLVE_RSP",
    "KIND_LEASE_INVALIDATE",
]
