"""Object discovery: how the network learns where objects live (§4).

Two schemes — decentralized E2E (ARP-like destination caches filled by
broadcast) and SDN-controller-installed identity routes — plus the
workload drivers that regenerate Figures 2 and 3.
"""

from .base import (
    ACCESS_BYTES,
    KIND_ACCESS_NACK,
    KIND_ACCESS_REQ,
    KIND_ACCESS_RSP,
    KIND_ADVERTISE,
    KIND_FIND,
    KIND_FOUND,
    AccessRecord,
    DiscoveryError,
    ObjectHome,
    move_object,
)
from .controller import IdentityAccessor, SdnController, advertise
from .e2e import E2EResolver
from .hybrid import HybridAccessor
from .workload import (
    SCHEME_CONTROLLER,
    SCHEME_E2E,
    SweepPoint,
    run_fig2_point,
    run_fig3_point,
)

__all__ = [
    "ObjectHome",
    "AccessRecord",
    "DiscoveryError",
    "move_object",
    "E2EResolver",
    "HybridAccessor",
    "SdnController",
    "IdentityAccessor",
    "advertise",
    "SweepPoint",
    "run_fig2_point",
    "run_fig3_point",
    "SCHEME_E2E",
    "SCHEME_CONTROLLER",
    "ACCESS_BYTES",
    "KIND_FIND",
    "KIND_FOUND",
    "KIND_ACCESS_REQ",
    "KIND_ACCESS_RSP",
    "KIND_ACCESS_NACK",
    "KIND_ADVERTISE",
]
