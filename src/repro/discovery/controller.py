"""The controller-based discovery scheme.

§4: "in the controller scheme, hosts notify controllers about objects,
which are then responsible for updating forwarding tables of switches...
the controller scheme has uniform latency of 1 RTT (and is unicast)."

Three pieces (the advertisement ingress itself lives in
:class:`DirectoryController`, shared with the sharded plane in
:mod:`repro.discovery.sharded`):

* :class:`SdnController` — logic attached to the controller host; on an
  ``ctl.advertise`` it computes, for every switch, the shortest-path
  egress port toward the owner and installs an exact-match identity
  route (respecting switch table capacity — installs can fail when the
  table fills, the E12 scaling wall).
* :class:`AdvertisingHome` helper — owner-side: advertise on creation
  and on movement.
* :class:`IdentityAccessor` — requester-side: accesses are a single
  identity-routed request (no host address; switches forward on the
  object ID) answered by a unicast reply: uniform 1 RTT, zero broadcast.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..core.objectid import ObjectID
from ..obs.registry import MetricsRegistry
from ..sim import AnyOf, Future, Simulator, Timeout, Tracer
from ..net.host import Host
from ..net.packet import Packet
from ..net.topology import Network
from .base import (
    ACCESS_BYTES,
    KIND_ACCESS_NACK,
    KIND_ACCESS_REQ,
    KIND_ACCESS_RSP,
    KIND_ADVERTISE,
    AccessRecord,
    DiscoveryError,
)

__all__ = ["DirectoryController", "SdnController", "IdentityAccessor", "advertise"]

_req_ids = itertools.count(1)


class DirectoryController:
    """Advertisement ingress shared by every controller-plane variant.

    Owns the ``{oid: owner}`` directory and the ``ctl.advertise``
    handler; subclasses decide what accepting an advertisement *does* —
    the single :class:`SdnController` pushes identity routes into switch
    tables, the sharded directory (:mod:`repro.discovery.sharded`) acks
    the owner and invalidates outstanding leases.
    """

    def __init__(self, host: Host, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 metrics_name: Optional[str] = None):
        self.host = host
        self.sim: Simulator = host.sim
        self.tracer = tracer or Tracer()
        if metrics is not None and metrics_name is not None:
            metrics.register(metrics_name, self.tracer, replace=True)
        self.owner_of: Dict[ObjectID, str] = {}
        host.on(KIND_ADVERTISE, self._on_advertise)

    def _on_advertise(self, packet: Packet) -> None:
        oid = packet.oid
        assert oid is not None
        owner = packet.payload["owner"]
        previous = self.owner_of.get(oid)
        self.owner_of[oid] = owner
        self._accepted(oid, owner, previous, packet)

    def _accepted(self, oid: ObjectID, owner: str, previous: Optional[str],
                  packet: Packet) -> None:
        """Hook: an advertisement was stored (``previous`` may equal
        ``owner`` on a refresh)."""

    def supersedes(self, oid: ObjectID, owner: str) -> bool:
        """True while ``owner`` is still the directory's answer for
        ``oid`` — deferred work (route installs) checks this so a newer
        advertisement wins."""
        return self.owner_of.get(oid) == owner

    @property
    def objects_tracked(self) -> int:
        """Number of objects this directory knows about."""
        return len(self.owner_of)


class SdnController(DirectoryController):
    """Controller logic: advertisement ingress + switch table updates.

    ``install_delay_us`` models the control-channel and table-write time
    per switch; installs across switches proceed in parallel.  The
    controller is attached to a real host, so advertisements themselves
    traverse the data network (they are control traffic, off the access
    path — Figure 2 measures access RTT, not advertisement cost).
    """

    def __init__(self, network: Network, host: Host,
                 install_delay_us: float = 20.0,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 metrics_name: str = "discovery.controller"):
        if install_delay_us < 0:
            raise DiscoveryError("install delay must be non-negative")
        super().__init__(host, tracer=tracer, metrics=metrics,
                         metrics_name=metrics_name)
        self.network = network
        self.install_delay_us = install_delay_us
        self.install_failures = 0

    def _accepted(self, oid: ObjectID, owner: str, previous: Optional[str],
                  packet: Packet) -> None:
        self.tracer.count("controller.advertised")
        self.sim.schedule(self.install_delay_us, self._install_routes, oid, owner)

    def _install_routes(self, oid: ObjectID, owner: str) -> None:
        """Point every switch's identity table at ``owner`` for ``oid``."""
        if not self.supersedes(oid, owner):
            return  # a newer advertisement superseded this one
        for switch in self.network.switches:
            port = self.network.port_toward(switch.name, owner)
            if not switch.install_identity_route(oid, port):
                self.install_failures += 1
                self.tracer.count("controller.install_failed")


def advertise(host: Host, oid: ObjectID, controller_host: str = "controller") -> None:
    """Owner-side: tell the controller this host holds ``oid``.

    Called at object creation and again after movement (the §4 model:
    "hosts notify controllers about objects").
    """
    host.send(Packet(
        kind=KIND_ADVERTISE, src=host.name, dst=controller_host, oid=oid,
        payload={"owner": host.name}, payload_bytes=24,
    ))


class IdentityAccessor:
    """Requester-side accessor that routes on object identity.

    No destination cache, no discovery step: the switches *are* the
    location service.  Every access is one identity-routed request and
    one unicast reply.
    """

    def __init__(self, host: Host, timeout_us: float = 50_000.0,
                 max_retries: int = 3, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 metrics_name: str = "discovery.identity"):
        if timeout_us <= 0:
            raise DiscoveryError("timeout must be positive")
        self.host = host
        self.sim: Simulator = host.sim
        self.timeout_us = timeout_us
        self.max_retries = max_retries
        self.tracer = tracer or Tracer()
        if metrics is not None:
            metrics.register(metrics_name, self.tracer, replace=True)
        self._pending: Dict[int, Future] = {}
        host.on(KIND_ACCESS_RSP, self._on_rsp)
        host.on(KIND_ACCESS_NACK, self._on_rsp)

    def _on_rsp(self, packet: Packet) -> None:
        future = self._pending.pop(packet.payload["req_id"], None)
        if future is not None and not future.done:
            future.set_result(packet)

    def access(self, oid: ObjectID, offset: int = 0, length: int = ACCESS_BYTES):
        """Process: read one cache line of ``oid``; returns AccessRecord."""
        record = AccessRecord(oid=oid, start_us=self.sim.now)
        for _ in range(self.max_retries):
            req_id = next(_req_ids)
            future = Future(self.sim, name=f"idacc-{req_id}")
            self._pending[req_id] = future
            self.host.send(Packet(
                kind=KIND_ACCESS_REQ, src=self.host.name, dst=None, oid=oid,
                payload={"req_id": req_id, "offset": offset, "length": length},
                payload_bytes=24,
            ))
            record.round_trips += 1
            index, reply = yield AnyOf([future, Timeout(self.timeout_us)])
            if index == 1:
                self.tracer.count("identity.timeout")
                self._pending.pop(req_id, None)
                continue
            if reply.kind == KIND_ACCESS_RSP:
                record.ok = True
                break
            # NACK: routes are mid-update after a movement; retry.
            self.tracer.count("identity.nack")
        record.end_us = self.sim.now
        self.tracer.sample("identity.access_us", record.latency_us, self.sim.now)
        self.tracer.count("identity.access_ok" if record.ok else "identity.access_failed")
        return record
