"""Common machinery for object discovery: message kinds, the per-host
object home (server side), access accounting, and object movement.

§4 frames the experiments as *discovery*: "how the network learns the
location of objects."  Both schemes share the server side implemented
here — a host that owns objects and answers access requests — and differ
only in how a requester resolves an object ID to a path:

* :mod:`repro.discovery.e2e` — decentralized, ARP-like destination
  caches filled by broadcast;
* :mod:`repro.discovery.controller` — an SDN controller installing
  identity routes in switch tables.

Accesses read one cache line (64 B) from the target object, matching the
"memory message" granularity of §3.2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.objectid import ObjectID
from ..core.space import ObjectSpace
from ..sim import Simulator, Tracer
from ..net.host import Host
from ..net.packet import Packet

__all__ = [
    "KIND_FIND",
    "KIND_FOUND",
    "KIND_ACCESS_REQ",
    "KIND_ACCESS_RSP",
    "KIND_ACCESS_NACK",
    "KIND_ADVERTISE",
    "KIND_ADVERTISE_ACK",
    "KIND_RESOLVE_REQ",
    "KIND_RESOLVE_RSP",
    "KIND_LEASE_INVALIDATE",
    "ACCESS_BYTES",
    "AccessRecord",
    "ObjectHome",
    "DiscoveryError",
    "move_object",
]

# E2E discovery vocabulary.
KIND_FIND = "disc.find"          # broadcast: who holds object X?
KIND_FOUND = "disc.found"        # unicast reply: I do (optionally with data)
# Access vocabulary (shared by both schemes).
KIND_ACCESS_REQ = "obj.access_req"
KIND_ACCESS_RSP = "obj.access_rsp"
KIND_ACCESS_NACK = "obj.access_nack"  # object is not (any longer) here
# Controller vocabulary.
KIND_ADVERTISE = "ctl.advertise"
# Sharded-directory vocabulary (controller plane split across shards).
KIND_ADVERTISE_ACK = "ctl.advertise_ack"   # shard -> owner: advertisement stored
KIND_RESOLVE_REQ = "shard.resolve_req"     # requester -> shard: who holds X?
KIND_RESOLVE_RSP = "shard.resolve_rsp"     # shard -> requester: holder + lease
KIND_LEASE_INVALIDATE = "shard.lease_inval"  # shard -> lease holder: drop X

ACCESS_BYTES = 64  # one cache line per access, per §3.2

_find_ids = itertools.count(1)


class DiscoveryError(Exception):
    """Raised on protocol/setup errors in the discovery layer."""


@dataclass
class AccessRecord:
    """Everything measured about one object access."""

    oid: ObjectID
    start_us: float
    end_us: float = 0.0
    round_trips: int = 0        # request/reply exchanges on the access path
    broadcasts: int = 0         # broadcast packets this access originated
    was_new: bool = False       # first-ever access to this object
    was_stale: bool = False     # destination cache pointed at the wrong host
    ok: bool = False

    @property
    def latency_us(self) -> float:
        """End-to-end latency of this access."""
        return self.end_us - self.start_us


class ObjectHome:
    """The server side: a host that owns objects and answers for them.

    * answers broadcast ``disc.find`` for resident objects (optionally
      attaching data when the finder asked for a combined find+access);
    * answers unicast/identity-routed ``obj.access_req`` with a cache
      line of object data, or a NACK naming the forwarding hint if the
      object has moved away and ``forwarding_hints`` is enabled.
    """

    def __init__(self, host: Host, space: Optional[ObjectSpace] = None,
                 tracer: Optional[Tracer] = None):
        self.host = host
        self.sim: Simulator = host.sim
        # Explicit None check: ObjectSpace defines __len__, so an empty
        # space is falsy and `space or ...` would silently discard it.
        self.space = space if space is not None else ObjectSpace(host_name=host.name)
        self.tracer = tracer or Tracer()
        # Where objects we used to own went.  Two opt-in variants use it
        # (both off by default — baseline E2E re-broadcasts on staleness,
        # as §4 describes):
        #   * forward_stale_accesses: old holder chases the object on the
        #     requester's behalf (the "network absorbs the cost" idea);
        #   * include_move_hints: the NACK names the new holder so the
        #     requester retries unicast instead of broadcasting.
        self.moved_to: Dict[ObjectID, str] = {}
        self.forward_stale_accesses = False
        self.include_move_hints = False
        host.on(KIND_FIND, self._on_find)
        host.on(KIND_ACCESS_REQ, self._on_access)

    # -- handlers ----------------------------------------------------------
    def _on_find(self, packet: Packet) -> None:
        oid = packet.oid
        if oid is None or oid not in self.space:
            return  # not ours: stay silent
        self.tracer.count("home.find_answered")
        payload = {"find_id": packet.payload["find_id"], "holder": self.host.name}
        payload_bytes = 24
        if packet.payload.get("include_data"):
            obj = self.space.get(oid)
            offset = packet.payload.get("offset", 0)
            length = min(packet.payload.get("length", ACCESS_BYTES), obj.size - offset)
            payload["data"] = obj.read(offset, length)
            payload["version"] = obj.version
            payload_bytes += length
        self.host.send(Packet(
            kind=KIND_FOUND, src=self.host.name, dst=packet.src, oid=oid,
            payload=payload, payload_bytes=payload_bytes,
        ))

    def _on_access(self, packet: Packet) -> None:
        oid = packet.oid
        assert oid is not None
        req_id = packet.payload["req_id"]
        # Forwarded requests carry the original requester in reply_to;
        # spoofing it into src would poison switch learning tables.
        requester = packet.payload.get("reply_to") or packet.src
        if oid in self.space:
            obj = self.space.get(oid)
            offset = packet.payload.get("offset", 0)
            length = min(packet.payload.get("length", ACCESS_BYTES), obj.size - offset)
            self.tracer.count("home.access_served")
            self.host.send(Packet(
                kind=KIND_ACCESS_RSP, src=self.host.name, dst=requester, oid=oid,
                payload={
                    "req_id": req_id,
                    "holder": self.host.name,
                    "data": obj.read(offset, length),
                    "version": obj.version,
                },
                payload_bytes=24 + length,
            ))
            return
        if packet.dst is None:
            # Identity-routed request that reached us by switch-table
            # fallback flooding: we are simply not the holder.  Only the
            # holder may answer — a NACK is a *unicast* contract ("you
            # addressed me and I don't have it"), and NACKing floods
            # would race ahead of the real holder's reply.
            self.tracer.count("home.not_mine")
            return
        hint = self.moved_to.get(oid)
        if self.forward_stale_accesses and hint is not None:
            # The network-absorbs-the-cost variant: chase the object on
            # behalf of the requester instead of bouncing a NACK.
            self.tracer.count("home.access_forwarded")
            forwarded_payload = dict(packet.payload)
            forwarded_payload["reply_to"] = requester
            self.host.send(Packet(
                kind=KIND_ACCESS_REQ, src=self.host.name, dst=hint, oid=oid,
                payload=forwarded_payload, payload_bytes=packet.payload_bytes,
            ))
            return
        self.tracer.count("home.access_nacked")
        self.host.send(Packet(
            kind=KIND_ACCESS_NACK, src=self.host.name, dst=requester, oid=oid,
            payload={"req_id": req_id,
                     "hint": hint if self.include_move_hints else None},
            payload_bytes=24,
        ))


def move_object(oid: ObjectID, src: ObjectHome, dst: ObjectHome) -> None:
    """Relocate ``oid`` from one home to another (byte-level copy).

    Movement is modelled as an out-of-band background transfer: the
    experiments measure the *access-path* consequences of staleness, not
    the bulk transfer itself (which both schemes pay identically).
    """
    wire = src.space.export_object(oid)
    src.space.evict(oid)
    dst.space.import_object(wire, replace=True)
    src.moved_to[oid] = dst.host.name
    dst.moved_to.pop(oid, None)
