"""The end-to-end (E2E) discovery scheme.

§4: "In E2E, hosts store a destination cache, recording a map of object
IDs and hosts that it must use broadcast to discover on first access...
The E2E scheme is potentially more scalable, but has worst-case latency
of 2 round-trip times (RTTs) if the cache grows stale (as this triggers
a broadcast discovery packet followed by the unicast access packet)."

Protocol, as reproduced (interpretation documented in EXPERIMENTS.md):

* **cache hit** — unicast access to the cached holder: 1 RTT;
* **first access (new object)** — broadcast ``find`` answered by the
  holder (1 RTT), then the unicast access (1 RTT): 2 RTTs total and one
  broadcast on the wire (Figure 2's rising E2E line);
* **stale entry (object moved)** — the unicast access bounces with a
  NACK, and the requester re-discovers with a *combined* find+access
  broadcast whose reply carries the data: 2 RTTs total, matching
  Figure 3's 1 -> 2 RTT climb;
* **forwarding variant** (``use_forwarding_hints``) — the old holder
  forwards the access to where it sent the object instead of NACKing,
  the §4 closing "network can absorb some of the cost" ablation.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..core.objectid import ObjectID
from ..obs.registry import MetricsRegistry
from ..sim import AnyOf, Future, Simulator, Timeout, Tracer
from ..net.host import Host
from ..net.packet import BROADCAST, Packet
from .base import (
    ACCESS_BYTES,
    KIND_ACCESS_NACK,
    KIND_ACCESS_REQ,
    KIND_ACCESS_RSP,
    KIND_FIND,
    KIND_FOUND,
    AccessRecord,
    DiscoveryError,
)

__all__ = ["E2EResolver"]

_req_ids = itertools.count(1)
_find_ids = itertools.count(1)


class E2EResolver:
    """Requester-side E2E discovery: destination cache + broadcast find."""

    def __init__(self, host: Host, timeout_us: float = 50_000.0,
                 max_retries: int = 3, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 metrics_name: str = "discovery.e2e"):
        if timeout_us <= 0:
            raise DiscoveryError("timeout must be positive")
        self.host = host
        self.sim: Simulator = host.sim
        self.timeout_us = timeout_us
        self.max_retries = max_retries
        self.tracer = tracer or Tracer()
        if metrics is not None:
            metrics.register(metrics_name, self.tracer, replace=True)
        self.cache: Dict[ObjectID, str] = {}
        self._pending: Dict[int, Future] = {}
        host.on(KIND_FOUND, self._on_found)
        host.on(KIND_ACCESS_RSP, self._on_access_rsp)
        host.on(KIND_ACCESS_NACK, self._on_access_nack)

    # -- ingress ------------------------------------------------------------
    def _complete(self, key: Tuple[str, int], value) -> None:
        future = self._pending.pop(key, None)
        if future is not None and not future.done:
            future.set_result(value)

    def _on_found(self, packet: Packet) -> None:
        self._complete(("find", packet.payload["find_id"]), packet)

    def _on_access_rsp(self, packet: Packet) -> None:
        self._complete(("req", packet.payload["req_id"]), packet)

    def _on_access_nack(self, packet: Packet) -> None:
        self._complete(("req", packet.payload["req_id"]), packet)

    # -- exchange helper ---------------------------------------------------
    def _exchange(self, key, send_fn, record: AccessRecord):
        """Process: send via ``send_fn`` and await the keyed reply,
        retrying up to ``max_retries`` times on timeout.  Returns the
        reply packet or None if every attempt timed out.

        Each attempt is a full request/reply exchange on the wire, so
        ``round_trips`` is counted here, per send — counting once at the
        call site would under-report latency accounting under loss."""
        for _ in range(self.max_retries):
            future = Future(self.sim, name=str(key))
            self._pending[key] = future
            send_fn()
            record.round_trips += 1
            index, value = yield AnyOf([future, Timeout(self.timeout_us)])
            if index == 0:
                return value
            self.tracer.count("e2e.timeout")
            self._pending.pop(key, None)
        return None

    # -- the access operation ------------------------------------------------
    def access(self, oid: ObjectID, offset: int = 0, length: int = ACCESS_BYTES):
        """Process: read one cache line of ``oid``; returns AccessRecord."""
        record = AccessRecord(oid=oid, start_us=self.sim.now)
        cached_holder = self.cache.get(oid)
        if cached_holder is None:
            record.was_new = True
            ok = yield from self._discover_then_access(oid, offset, length, record)
        else:
            ok = yield from self._access_via(cached_holder, oid, offset, length, record)
        record.ok = ok
        record.end_us = self.sim.now
        self.tracer.sample("e2e.access_us", record.latency_us, self.sim.now)
        self.tracer.count("e2e.access_ok" if ok else "e2e.access_failed")
        return record

    def _access_via(self, holder: str, oid: ObjectID, offset: int, length: int,
                    record: AccessRecord):
        """Unicast access to a (possibly stale) holder."""
        req_id = next(_req_ids)

        def send():
            self.host.send(Packet(
                kind=KIND_ACCESS_REQ, src=self.host.name, dst=holder, oid=oid,
                payload={"req_id": req_id, "offset": offset, "length": length},
                payload_bytes=24,
            ))

        reply = yield from self._exchange(("req", req_id), send, record)
        if reply is None:
            return False
        if reply.kind == KIND_ACCESS_RSP:
            self.cache[oid] = reply.payload["holder"]
            return True
        # NACK: our cache was stale.  Re-discover with data piggybacked.
        record.was_stale = True
        self.tracer.count("e2e.stale")
        self.cache.pop(oid, None)
        hint = reply.payload.get("hint")
        if hint:
            # NACK carried a forwarding hint: retry unicast, no broadcast.
            return (yield from self._access_via(hint, oid, offset, length, record))
        return (yield from self._find(oid, offset, length, record, include_data=True))

    def _discover_then_access(self, oid: ObjectID, offset: int, length: int,
                              record: AccessRecord):
        """First access: plain discovery broadcast, then unicast access."""
        found = yield from self._find(oid, offset, length, record, include_data=False)
        if not found:
            return False
        return (yield from self._access_via(self.cache[oid], oid, offset, length, record))

    def _find(self, oid: ObjectID, offset: int, length: int,
              record: AccessRecord, include_data: bool):
        """Broadcast a find; on ``include_data`` the reply doubles as the
        access response (the stale-retry fast path)."""
        find_id = next(_find_ids)

        def send():
            record.broadcasts += 1
            self.tracer.count("e2e.broadcast")
            self.host.send(Packet(
                kind=KIND_FIND, src=self.host.name, dst=BROADCAST, oid=oid,
                payload={
                    "find_id": find_id,
                    "include_data": include_data,
                    "offset": offset,
                    "length": length,
                },
                payload_bytes=24,
            ))

        reply = yield from self._exchange(("find", find_id), send, record)
        if reply is None:
            return False
        self.cache[oid] = reply.payload["holder"]
        return True
