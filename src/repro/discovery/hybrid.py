"""The hybrid discovery scheme: combining E2E and controller routing.

§4: "we are building both schemes so we can compare their efficacy at
larger scales (and consider combinations of approaches in case of
limited hardware capabilities)."

The combination implemented here layers a host-side destination cache
(the E2E ingredient) over controller-installed identity routes (the SDN
ingredient), so each mechanism covers the other's weakness:

1. **cache hit** — unicast to the cached holder: 1 RTT, no switch state
   consumed;
2. **cache miss** — an identity-routed request: 1 RTT through installed
   routes when the switch table covers the object, and still 1 RTT via
   flood-on-miss when it does not (paying broadcast traffic instead of
   latency); the reply teaches the cache, so each object floods at most
   once per requester.

With an *unlimited* table this behaves like the controller scheme; with
*zero* table it degrades to first-touch flooding plus cached unicast —
and the interesting regime is in between, which the E12h benchmark
sweeps.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..core.objectid import ObjectID
from ..obs.registry import MetricsRegistry
from ..sim import AnyOf, Future, Simulator, Timeout, Tracer
from ..net.host import Host
from ..net.packet import Packet
from .base import (
    ACCESS_BYTES,
    KIND_ACCESS_NACK,
    KIND_ACCESS_REQ,
    KIND_ACCESS_RSP,
    AccessRecord,
    DiscoveryError,
)

__all__ = ["HybridAccessor"]

_req_ids = itertools.count(1)


class HybridAccessor:
    """Requester-side hybrid: destination cache over identity routing."""

    def __init__(self, host: Host, timeout_us: float = 50_000.0,
                 max_retries: int = 3, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 metrics_name: str = "discovery.hybrid"):
        if timeout_us <= 0:
            raise DiscoveryError("timeout must be positive")
        self.host = host
        self.sim: Simulator = host.sim
        self.timeout_us = timeout_us
        self.max_retries = max_retries
        self.tracer = tracer or Tracer()
        if metrics is not None:
            metrics.register(metrics_name, self.tracer, replace=True)
        self.cache: Dict[ObjectID, str] = {}
        self._pending: Dict[int, Future] = {}
        host.on(KIND_ACCESS_RSP, self._on_reply)
        host.on(KIND_ACCESS_NACK, self._on_reply)

    def _on_reply(self, packet: Packet) -> None:
        future = self._pending.pop(packet.payload["req_id"], None)
        if future is not None and not future.done:
            future.set_result(packet)

    def _send_request(self, oid: ObjectID, dst: Optional[str], offset: int,
                      length: int) -> int:
        req_id = next(_req_ids)
        self.host.send(Packet(
            kind=KIND_ACCESS_REQ, src=self.host.name, dst=dst, oid=oid,
            payload={"req_id": req_id, "offset": offset, "length": length},
            payload_bytes=24,
        ))
        return req_id

    def access(self, oid: ObjectID, offset: int = 0, length: int = ACCESS_BYTES):
        """Process: read one cache line of ``oid``; returns AccessRecord."""
        record = AccessRecord(oid=oid, start_us=self.sim.now)
        cached = self.cache.get(oid)
        record.was_new = cached is None
        for attempt in range(self.max_retries):
            if cached is not None:
                self.tracer.count("hybrid.unicast")
                dst = cached
            else:
                self.tracer.count("hybrid.identity_routed")
                dst = None  # identity-routed; switches resolve or flood
            req_id = self._send_request(oid, dst, offset, length)
            record.round_trips += 1
            future = Future(self.sim, name=f"hybrid-{req_id}")
            self._pending[req_id] = future
            index, reply = yield AnyOf([future, Timeout(self.timeout_us)])
            if index == 1:
                self.tracer.count("hybrid.timeout")
                self._pending.pop(req_id, None)
                cached = None  # drop to identity routing on retry
                continue
            if reply.kind == KIND_ACCESS_RSP:
                self.cache[oid] = reply.payload["holder"]
                record.ok = True
                break
            # NACK: the cached holder no longer has it.
            self.tracer.count("hybrid.stale")
            record.was_stale = True
            self.cache.pop(oid, None)
            cached = reply.payload.get("hint")
        record.end_us = self.sim.now
        self.tracer.sample("hybrid.access_us", record.latency_us, self.sim.now)
        self.tracer.count("hybrid.access_ok" if record.ok else "hybrid.access_failed")
        return record
