"""Workload drivers that regenerate the paper's Figures 2 and 3.

Each sweep point builds a fresh seeded simulator over the §4 topology
(three hosts, four interconnected switches), runs a batch of object
accesses from the driver host, and reports the statistics the figures
plot: access round-trip time, and broadcast messages per 100 accesses.

* :func:`run_fig2_point` — a mix of accesses to *new* objects (never
  accessed before) and *old* ones, under either scheme.
* :func:`run_fig3_point` — E2E accesses while objects migrate between
  the responder hosts, staling the driver's destination cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.objectid import ObjectID
from ..core.space import ObjectSpace
from ..core.objectid import IDAllocator
from ..sim import Simulator, Timeout, summarize
from ..net.topology import Network, build_paper_topology
from .base import AccessRecord, ObjectHome, move_object
from .controller import IdentityAccessor, SdnController, advertise
from .e2e import E2EResolver

__all__ = [
    "SweepPoint",
    "run_fig2_point",
    "run_fig3_point",
    "SCHEME_E2E",
    "SCHEME_CONTROLLER",
]

SCHEME_E2E = "e2e"
SCHEME_CONTROLLER = "controller"

_RESPONDERS = ("resp1", "resp2")


@dataclass
class SweepPoint:
    """Aggregated results of one sweep point (one bar/box in the figure)."""

    scheme: str
    percent: int
    mean_rtt_us: float
    p50_rtt_us: float
    p95_rtt_us: float
    stdev_rtt_us: float
    min_rtt_us: float
    max_rtt_us: float
    broadcasts_per_100: float
    mean_round_trips: float
    failures: int
    records: List[AccessRecord] = field(repr=False, default_factory=list)


def _aggregate(scheme: str, percent: int, records: List[AccessRecord]) -> SweepPoint:
    latencies = [r.latency_us for r in records if r.ok]
    stats = summarize(latencies)
    broadcasts = sum(r.broadcasts for r in records)
    return SweepPoint(
        scheme=scheme,
        percent=percent,
        mean_rtt_us=stats.mean,
        p50_rtt_us=stats.p50,
        p95_rtt_us=stats.p95,
        stdev_rtt_us=stats.stdev,
        min_rtt_us=stats.minimum,
        max_rtt_us=stats.maximum,
        broadcasts_per_100=100.0 * broadcasts / max(len(records), 1),
        mean_round_trips=sum(r.round_trips for r in records) / max(len(records), 1),
        failures=sum(1 for r in records if not r.ok),
        records=records,
    )


class _Testbed:
    """One instantiation of the §4 environment, ready to drive accesses."""

    def __init__(self, scheme: str, seed: int, object_size: int,
                 switch_processing_us: float = 0.5):
        if scheme not in (SCHEME_E2E, SCHEME_CONTROLLER):
            raise ValueError(f"unknown scheme {scheme!r}")
        self.scheme = scheme
        self.sim = Simulator(seed=seed)
        self.object_size = object_size
        self.net: Network = build_paper_topology(
            self.sim,
            with_controller_host=(scheme == SCHEME_CONTROLLER),
            processing_delay_us=switch_processing_us,
        )
        self.allocator = IDAllocator(seed=seed + 1)
        self.homes: Dict[str, ObjectHome] = {
            name: ObjectHome(
                self.net.host(name),
                ObjectSpace(self.allocator, host_name=name),
            )
            for name in _RESPONDERS
        }
        for name, home in self.homes.items():
            self.net.metrics.register(f"discovery.home.{name}", home.tracer)
        driver = self.net.host("driver")
        if scheme == SCHEME_CONTROLLER:
            self.controller = SdnController(self.net, self.net.host("controller"),
                                            metrics=self.net.metrics)
            self.accessor = IdentityAccessor(driver, metrics=self.net.metrics)
        else:
            self.controller = None
            self.accessor = E2EResolver(driver, metrics=self.net.metrics)
        self.location: Dict[ObjectID, str] = {}

    # -- object lifecycle ---------------------------------------------------
    def create_object(self, responder: str) -> ObjectID:
        """Create (and, under the controller scheme, advertise) an object."""
        home = self.homes[responder]
        obj = home.space.create_object(size=self.object_size)
        self.location[obj.oid] = responder
        if self.scheme == SCHEME_CONTROLLER:
            advertise(home.host, obj.oid)
        return obj.oid

    def move(self, oid: ObjectID) -> str:
        """Migrate ``oid`` to the other responder; returns the new holder."""
        src = self.location[oid]
        dst = _RESPONDERS[1 - _RESPONDERS.index(src)]
        move_object(oid, self.homes[src], self.homes[dst])
        self.location[oid] = dst
        if self.scheme == SCHEME_CONTROLLER:
            advertise(self.homes[dst].host, oid)
        return dst

    def settle(self, us: float = 2_000.0):
        """Process: let control traffic (advertisements) finish."""
        yield Timeout(us)


def run_fig2_point(
    scheme: str,
    percent_new: int,
    n_accesses: int = 100,
    n_old_objects: int = 20,
    object_size: int = 4096,
    seed: int = 42,
) -> SweepPoint:
    """One Figure 2 sweep point: ``percent_new``% of accesses target
    objects never accessed before; the rest revisit warmed-up objects."""
    if not 0 <= percent_new <= 100:
        raise ValueError("percent_new must be in [0, 100]")
    bed = _Testbed(scheme, seed=seed * 1000 + percent_new, object_size=object_size)
    rng = bed.sim.rng
    old_pool = [
        bed.create_object(_RESPONDERS[i % len(_RESPONDERS)])
        for i in range(n_old_objects)
    ]
    records: List[AccessRecord] = []

    def driver_proc():
        yield from bed.settle()
        # Warm-up: touch every old object once (not measured) so later
        # accesses to them are cache/table hits.
        for oid in old_pool:
            yield bed.sim.spawn(bed.accessor.access(oid), name="warmup")
        for _ in range(n_accesses):
            if rng.random() < percent_new / 100.0:
                responder = rng.choice(_RESPONDERS)
                oid = bed.create_object(responder)
                if bed.scheme == SCHEME_CONTROLLER:
                    # Creation-time advertisement is control traffic; it
                    # completes before the application touches the object.
                    yield from bed.settle(100.0)
            else:
                oid = rng.choice(old_pool)
            record = yield bed.sim.spawn(bed.accessor.access(oid), name="access")
            records.append(record)
        return None

    bed.sim.run_process(driver_proc(), name="fig2-driver")
    return _aggregate(scheme, percent_new, records)


def run_fig3_point(
    percent_moved: int,
    n_accesses: int = 100,
    n_objects: int = 20,
    object_size: int = 4096,
    seed: int = 42,
    use_forwarding_hints: bool = False,
    scheme: str = SCHEME_E2E,
) -> SweepPoint:
    """One Figure 3 sweep point: before each access, with probability
    ``percent_moved``% the target object migrates to the other responder,
    staling the driver's destination cache (E2E) or the switch routes
    (controller variant)."""
    if not 0 <= percent_moved <= 100:
        raise ValueError("percent_moved must be in [0, 100]")
    bed = _Testbed(scheme, seed=seed * 1000 + percent_moved, object_size=object_size)
    if use_forwarding_hints:
        for home in bed.homes.values():
            home.forward_stale_accesses = True
    rng = bed.sim.rng
    pool = [
        bed.create_object(_RESPONDERS[i % len(_RESPONDERS)])
        for i in range(n_objects)
    ]
    records: List[AccessRecord] = []

    def driver_proc():
        yield from bed.settle()
        for oid in pool:  # warm the destination cache / switch tables
            yield bed.sim.spawn(bed.accessor.access(oid), name="warmup")
        for _ in range(n_accesses):
            oid = rng.choice(pool)
            if rng.random() < percent_moved / 100.0:
                bed.move(oid)
                if bed.scheme == SCHEME_CONTROLLER:
                    yield from bed.settle(100.0)
            record = yield bed.sim.spawn(bed.accessor.access(oid), name="access")
            records.append(record)
        return None

    bed.sim.run_process(driver_proc(), name="fig3-driver")
    return _aggregate(scheme, percent_moved, records)
