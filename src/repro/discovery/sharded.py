"""The sharded controller discovery plane with requester-side leases.

§4 concedes the controller scheme "may be less scalable" than E2E: one
controller host absorbs every advertisement and is a single point of
failure.  This module splits that directory across N controller hosts
and moves the hot path onto requester-side leases:

* :class:`ShardMap` — rendezvous (highest-random-weight) hashing of the
  128-bit object ID over the shard host names.  Every host derives the
  same map locally from the ID alone — no coordination traffic, the
  same philosophy as the paper's decentralized ID allocation.
* :class:`ShardDirectory` — one shard of the directory, attached to a
  controller host.  Stores ``{oid: owner}`` for the IDs that hash to
  it, acks advertisements (so owners can detect a dead shard), grants
  TTL leases on resolve, and pushes invalidations to outstanding lease
  holders when an advertisement changes an object's owner.
* :class:`ShardAdvertiser` — owner-side agent: advertises each resident
  object to its owning shard with ack-monitored retries, failing over
  to the successor shard when the owner shard is down (and optionally
  re-advertising on a refresh interval, which is what heals the
  directory after a shard crash mid-run).
* :class:`LeaseCachingResolver` — requester-side: a location cache with
  TTL leases.  A live lease is 1 RTT straight to the holder; a miss is
  2 RTTs (resolve via the owning shard, then the unicast access).
  Stale hits NACK-and-refresh exactly like E2E; shard crashes are
  absorbed by resolving against the successor shard.

:func:`run_sharded_point` drives the whole plane (or an E2E baseline on
the same fabric) under a Zipf-skewed access stream — the E18 workload.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.objectid import IDAllocator, ObjectID
from ..core.space import ObjectSpace
from ..obs.registry import MetricsRegistry
from ..sim import AnyOf, Future, Simulator, Timeout, Tracer, summarize
from ..net.host import Host
from ..net.packet import Packet
from ..net.topology import Network
from ..faults import FaultInjector, FaultPlan
from .base import (
    ACCESS_BYTES,
    KIND_ACCESS_NACK,
    KIND_ACCESS_REQ,
    KIND_ACCESS_RSP,
    KIND_ADVERTISE,
    KIND_ADVERTISE_ACK,
    KIND_LEASE_INVALIDATE,
    KIND_RESOLVE_REQ,
    KIND_RESOLVE_RSP,
    AccessRecord,
    DiscoveryError,
    ObjectHome,
    move_object,
)
from .controller import DirectoryController
from .e2e import E2EResolver

__all__ = [
    "ShardMap",
    "ShardDirectory",
    "ShardAdvertiser",
    "LeaseCachingResolver",
    "ShardedTestbed",
    "ShardedSweepResult",
    "run_sharded_point",
    "SCHEME_SHARDED",
]

SCHEME_SHARDED = "sharded"

_resolve_ids = itertools.count(1)
_access_ids = itertools.count(1)


class ShardMap:
    """Rendezvous hashing of object IDs over the shard host names.

    For each (oid, shard) pair a keyed digest yields a 64-bit score;
    the shard with the highest score owns the ID, the next-highest is
    its failover successor, and so on.  The ranking is a pure function
    of the ID and the shard list, so every host computes the same map
    with zero coordination, and removing one shard only reassigns the
    IDs that shard owned.
    """

    # Rankings memoized per ObjectID; the map is immutable, so entries
    # never go stale.  Bounded so a multi-million-object run cannot grow
    # without limit: on overflow the whole memo resets (deterministic —
    # no eviction order to get wrong), and hot IDs simply re-memoize.
    CACHE_LIMIT = 1 << 16

    def __init__(self, shards: Sequence[str]):
        if not shards:
            raise DiscoveryError("a shard map needs at least one shard")
        if len(set(shards)) != len(shards):
            raise DiscoveryError("duplicate shard names in shard map")
        self.shards: Tuple[str, ...] = tuple(shards)
        self._ranked_cache: Dict[ObjectID, Tuple[str, ...]] = {}

    @staticmethod
    def _score(oid: ObjectID, shard: str) -> int:
        digest = hashlib.blake2b(
            oid.value.to_bytes(16, "big") + shard.encode("utf-8"),
            digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def ranked(self, oid: ObjectID) -> Tuple[str, ...]:
        """All shards, highest rendezvous score first (the failover order).

        Memoized: every resolve and advertisement ranks its ID, so the
        O(shards) digest-and-sort was the directory plane's hot-path
        scan under open-loop load.
        """
        cached = self._ranked_cache.get(oid)
        if cached is None:
            cached = tuple(sorted(
                self.shards, key=lambda shard: self._score(oid, shard),
                reverse=True))
            if len(self._ranked_cache) >= self.CACHE_LIMIT:
                self._ranked_cache.clear()
            self._ranked_cache[oid] = cached
        return cached

    def shard_of(self, oid: ObjectID) -> str:
        """The shard owning ``oid``'s directory entry."""
        return self.ranked(oid)[0]

    def successor(self, oid: ObjectID, after: str) -> str:
        """The next shard in ``oid``'s failover order after ``after``."""
        ranked = self.ranked(oid)
        return ranked[(ranked.index(after) + 1) % len(ranked)]

    def load(self, oids: Sequence[ObjectID]) -> Dict[str, int]:
        """How many of ``oids`` each shard owns (balance introspection)."""
        counts = {shard: 0 for shard in self.shards}
        for oid in oids:
            counts[self.shard_of(oid)] += 1
        return counts


class ShardDirectory(DirectoryController):
    """One shard of the controller directory.

    Shares the advertisement ingress with :class:`SdnController` via
    :class:`DirectoryController`; instead of pushing switch routes it
    acks the advertiser (liveness signal for shard failover), serves
    ``shard.resolve_req`` with TTL leases, and pushes invalidations to
    every live lease holder when an object's owner changes.
    """

    def __init__(self, host: Host, lease_ttl_us: float = 100_000.0,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 metrics_name: Optional[str] = None):
        if lease_ttl_us <= 0:
            raise DiscoveryError("lease TTL must be positive")
        super().__init__(host, tracer=tracer, metrics=metrics,
                         metrics_name=metrics_name or f"discovery.shard.{host.name}")
        self.lease_ttl_us = lease_ttl_us
        # oid -> {requester host: lease expiry} for leases we granted.
        self.leases: Dict[ObjectID, Dict[str, float]] = {}
        host.on(KIND_RESOLVE_REQ, self._on_resolve)

    def _accepted(self, oid: ObjectID, owner: str, previous: Optional[str],
                  packet: Packet) -> None:
        self.tracer.count("shard.advertised")
        adv_id = packet.payload.get("adv_id")
        if adv_id is not None:
            self.host.send(Packet(
                kind=KIND_ADVERTISE_ACK, src=self.host.name, dst=packet.src,
                oid=oid, payload={"adv_id": adv_id}, payload_bytes=16,
            ))
        if previous is not None and previous != owner:
            self._invalidate_leases(oid)

    def _invalidate_leases(self, oid: ObjectID) -> None:
        granted = self.leases.pop(oid, None)
        if not granted:
            return
        now = self.sim.now
        for requester, expiry in granted.items():
            if expiry <= now:
                continue  # already lapsed; nothing to push
            self.tracer.count("shard.invalidations")
            self.host.send(Packet(
                kind=KIND_LEASE_INVALIDATE, src=self.host.name,
                dst=requester, oid=oid, payload_bytes=16,
            ))

    def _on_resolve(self, packet: Packet) -> None:
        oid = packet.oid
        assert oid is not None
        req_id = packet.payload["req_id"]
        owner = self.owner_of.get(oid)
        if owner is None:
            self.tracer.count("shard.resolve_unknown")
            payload = {"req_id": req_id, "holder": None, "ttl_us": 0.0}
        else:
            self.tracer.count("shard.resolved")
            self.leases.setdefault(oid, {})[packet.src] = \
                self.sim.now + self.lease_ttl_us
            payload = {"req_id": req_id, "holder": owner,
                       "ttl_us": self.lease_ttl_us}
        self.host.send(Packet(
            kind=KIND_RESOLVE_RSP, src=self.host.name, dst=packet.src,
            oid=oid, payload=payload, payload_bytes=24,
        ))


class ShardAdvertiser:
    """Owner-side advertisement agent for the sharded plane.

    Each advertised object gets a monitor process that sends the
    advertisement to the object's owning shard and waits for the ack.
    After ``ack_retries`` unanswered attempts the monitor fails over to
    the successor shard in rendezvous order (counted as
    ``shard.failover``).  With a ``refresh_interval_us`` the monitor
    re-advertises periodically — that refresh is what re-homes a
    directory entry after its shard crashes mid-run, and what moves it
    back once the shard recovers (each cycle restarts from the primary
    shard).
    """

    def __init__(self, host: Host, shard_map: ShardMap,
                 ack_timeout_us: float = 1_000.0, ack_retries: int = 2,
                 refresh_interval_us: Optional[float] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 metrics_name: Optional[str] = None):
        if ack_timeout_us <= 0:
            raise DiscoveryError("ack timeout must be positive")
        if ack_retries < 1:
            raise DiscoveryError("need at least one advertisement attempt")
        if refresh_interval_us is not None and refresh_interval_us <= 0:
            raise DiscoveryError("refresh interval must be positive")
        self.host = host
        self.sim: Simulator = host.sim
        self.shard_map = shard_map
        self.ack_timeout_us = ack_timeout_us
        self.ack_retries = ack_retries
        self.refresh_interval_us = refresh_interval_us
        self.tracer = tracer or Tracer()
        if metrics is not None:
            metrics.register(
                metrics_name or f"discovery.advertiser.{host.name}",
                self.tracer, replace=True)
        self._adv_ids = itertools.count(1)
        self._pending: Dict[int, Future] = {}
        # Version per oid: bumping it retires the running monitor, so
        # advertise-after-move and withdraw are race-free.
        self._versions: Dict[ObjectID, int] = {}
        host.on(KIND_ADVERTISE_ACK, self._on_ack)

    def _on_ack(self, packet: Packet) -> None:
        future = self._pending.pop(packet.payload["adv_id"], None)
        if future is not None and not future.done:
            future.set_result(packet.src)

    def advertise(self, oid: ObjectID) -> None:
        """Start (or restart) advertising ``oid`` as held by this host."""
        version = self._versions.get(oid, 0) + 1
        self._versions[oid] = version
        self.sim.spawn(self._monitor(oid, version),
                       name=f"shadv-{self.host.name}-{oid.short()}")

    def withdraw(self, oid: ObjectID) -> None:
        """Stop advertising ``oid`` (it moved away or was dropped)."""
        if oid in self._versions:
            self._versions[oid] += 1

    def stop(self) -> None:
        """Withdraw every advertisement (lets a run's event heap drain)."""
        for oid in list(self._versions):
            self.withdraw(oid)

    def _current(self, oid: ObjectID, version: int) -> bool:
        return self._versions.get(oid) == version

    def _monitor(self, oid: ObjectID, version: int):
        while self._current(oid, version):
            yield from self._advertise_once(oid, version)
            if self.refresh_interval_us is None:
                return None
            yield Timeout(self.refresh_interval_us)
        return None

    def _advertise_once(self, oid: ObjectID, version: int):
        """Process: one ack-monitored advertisement, walking the failover
        order until a shard answers.  Returns True on ack."""
        for index, shard in enumerate(self.shard_map.ranked(oid)):
            if index > 0:
                self.tracer.count("shard.failover")
            for _ in range(self.ack_retries):
                if not self._current(oid, version):
                    return False
                adv_id = next(self._adv_ids)
                future = Future(self.sim, name=f"adv-{adv_id}")
                self._pending[adv_id] = future
                self.host.send(Packet(
                    kind=KIND_ADVERTISE, src=self.host.name, dst=shard,
                    oid=oid,
                    payload={"owner": self.host.name, "adv_id": adv_id},
                    payload_bytes=24,
                ))
                index_won, _ = yield AnyOf([future, Timeout(self.ack_timeout_us)])
                if index_won == 0:
                    return True
                self._pending.pop(adv_id, None)
        return False


class LeaseCachingResolver:
    """Requester-side accessor for the sharded plane.

    A live cached lease sends the access straight to the holder (1 RTT);
    otherwise the resolver asks the object's owning shard first (2 RTTs
    total), walking the rendezvous failover order when a shard is dead
    or does not know the ID yet.  A NACK from a stale holder drops the
    lease and re-resolves — the E2E NACK-and-refresh shape — and shard
    invalidation pushes drop leases before they can go stale at all.
    With ``use_leases=False`` every access resolves via the shard (the
    cache-off baseline in the E18 sweep).
    """

    def __init__(self, host: Host, shard_map: ShardMap,
                 timeout_us: float = 50_000.0, max_retries: int = 3,
                 resolve_attempts: int = 1, use_leases: bool = True,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 metrics_name: str = "discovery.lease"):
        if timeout_us <= 0:
            raise DiscoveryError("timeout must be positive")
        if resolve_attempts < 1:
            raise DiscoveryError("need at least one resolve attempt per shard")
        self.host = host
        self.sim: Simulator = host.sim
        self.shard_map = shard_map
        self.timeout_us = timeout_us
        self.max_retries = max_retries
        self.resolve_attempts = resolve_attempts
        self.use_leases = use_leases
        self.tracer = tracer or Tracer()
        if metrics is not None:
            metrics.register(metrics_name, self.tracer, replace=True)
        self.cache: Dict[ObjectID, Tuple[str, float]] = {}  # oid -> (holder, expiry)
        self._pending: Dict[Tuple[str, int], Future] = {}
        self._seen: set = set()
        host.on(KIND_RESOLVE_RSP, self._on_resolve_rsp)
        host.on(KIND_ACCESS_RSP, self._on_access_rsp)
        host.on(KIND_ACCESS_NACK, self._on_access_rsp)
        host.on(KIND_LEASE_INVALIDATE, self._on_invalidate)

    # -- ingress ------------------------------------------------------------
    def _complete(self, key: Tuple[str, int], value) -> None:
        future = self._pending.pop(key, None)
        if future is not None and not future.done:
            future.set_result(value)

    def _on_resolve_rsp(self, packet: Packet) -> None:
        self._complete(("res", packet.payload["req_id"]), packet)

    def _on_access_rsp(self, packet: Packet) -> None:
        self._complete(("req", packet.payload["req_id"]), packet)

    def _on_invalidate(self, packet: Packet) -> None:
        if packet.oid in self.cache:
            del self.cache[packet.oid]
            self.tracer.count("lease.invalidated")

    # -- the access operation ------------------------------------------------
    def access(self, oid: ObjectID, offset: int = 0, length: int = ACCESS_BYTES):
        """Process: read one cache line of ``oid``; returns AccessRecord."""
        record = AccessRecord(oid=oid, start_us=self.sim.now)
        if oid not in self._seen:
            record.was_new = True
            self._seen.add(oid)
        for _ in range(self.max_retries):
            holder = self._leased_holder(oid)
            if holder is not None:
                self.tracer.count("lease.hit")
            else:
                self.tracer.count("lease.miss")
                holder = yield from self._resolve(oid, record)
                if holder is None:
                    continue  # every shard timed out or was blank; retry
            reply = yield from self._access_once(holder, oid, offset, length,
                                                 record)
            if reply is None:
                # Access timed out: the lease may point at a corpse.
                self.cache.pop(oid, None)
                continue
            if reply.kind == KIND_ACCESS_RSP:
                record.ok = True
                break
            # NACK: the leased holder no longer has the object.  Drop
            # the lease and re-resolve (NACK-and-refresh, like E2E).
            record.was_stale = True
            self.tracer.count("lease.stale")
            self.cache.pop(oid, None)
        record.end_us = self.sim.now
        self.tracer.sample("lease.access_us", record.latency_us, self.sim.now)
        self.tracer.count("lease.access_ok" if record.ok
                          else "lease.access_failed")
        return record

    def _leased_holder(self, oid: ObjectID) -> Optional[str]:
        if not self.use_leases:
            return None
        entry = self.cache.get(oid)
        if entry is None:
            return None
        holder, expiry = entry
        if expiry <= self.sim.now:
            del self.cache[oid]
            self.tracer.count("lease.expired")
            return None
        return holder

    def _resolve(self, oid: ObjectID, record: AccessRecord):
        """Process: ask the owning shard (then its successors) where
        ``oid`` lives; caches the lease and returns the holder, or None."""
        for index, shard in enumerate(self.shard_map.ranked(oid)):
            if index > 0:
                self.tracer.count("shard.failover")
            for _ in range(self.resolve_attempts):
                req_id = next(_resolve_ids)
                future = Future(self.sim, name=f"res-{req_id}")
                self._pending[("res", req_id)] = future
                self.host.send(Packet(
                    kind=KIND_RESOLVE_REQ, src=self.host.name, dst=shard,
                    oid=oid, payload={"req_id": req_id}, payload_bytes=24,
                ))
                record.round_trips += 1
                index_won, reply = yield AnyOf(
                    [future, Timeout(self.timeout_us)])
                if index_won == 1:
                    self.tracer.count("lease.timeout")
                    self._pending.pop(("res", req_id), None)
                    continue
                holder = reply.payload["holder"]
                if holder is None:
                    break  # this shard has no entry; ask the successor
                if self.use_leases:
                    self.cache[oid] = (
                        holder, self.sim.now + reply.payload["ttl_us"])
                return holder
        return None

    def _access_once(self, holder: str, oid: ObjectID, offset: int,
                     length: int, record: AccessRecord):
        """Process: one unicast access exchange; returns the reply or None."""
        req_id = next(_access_ids)
        future = Future(self.sim, name=f"lacc-{req_id}")
        self._pending[("req", req_id)] = future
        self.host.send(Packet(
            kind=KIND_ACCESS_REQ, src=self.host.name, dst=holder, oid=oid,
            payload={"req_id": req_id, "offset": offset, "length": length},
            payload_bytes=24,
        ))
        record.round_trips += 1
        index_won, reply = yield AnyOf([future, Timeout(self.timeout_us)])
        if index_won == 1:
            self.tracer.count("lease.timeout")
            self._pending.pop(("req", req_id), None)
            return None
        return reply

    def locator(self) -> Callable[[ObjectID, str], Optional[str]]:
        """A ``(oid, to) -> holder`` lookup over the live lease cache,
        suitable for :meth:`GlobalSpaceRuntime.set_locator` — leases
        double as a location hint for the runtime's nearest-holder
        path without any extra network traffic."""

        def lookup(oid: ObjectID, to: str) -> Optional[str]:
            entry = self.cache.get(oid)
            if entry is None:
                return None
            holder, expiry = entry
            return holder if expiry > self.sim.now else None

        return lookup


# ---------------------------------------------------------------------------
# the E18 workload: Zipf-skewed accesses over the sharded plane
# ---------------------------------------------------------------------------


@dataclass
class ShardedSweepResult:
    """Aggregates of one sharded-discovery sweep point."""

    scheme: str
    n_shards: int
    use_leases: bool
    mean_rtt_us: float
    p95_rtt_us: float
    mean_round_trips: float
    failures: int
    lease_hits: int
    lease_misses: int
    lease_invalidated: int
    shard_failovers: int
    advertise_load: Dict[str, int]
    counters: Dict[str, int]
    records: List[AccessRecord] = field(repr=False, default_factory=list)


class ShardedTestbed:
    """A star fabric with a driver, responder homes, and shard hosts.

    ``scheme`` picks the access plane: :data:`SCHEME_SHARDED` runs the
    shard directories + lease resolver; ``"e2e"`` runs the broadcast
    resolver on the identical topology and workload (the E18 baseline).
    """

    def __init__(self, n_shards: int, seed: int, n_responders: int = 2,
                 object_size: int = 1024, scheme: str = SCHEME_SHARDED,
                 use_leases: bool = True, lease_ttl_us: float = 100_000.0,
                 refresh_interval_us: Optional[float] = None,
                 ack_timeout_us: float = 1_000.0,
                 resolver_timeout_us: float = 2_000.0,
                 max_retries: int = 6,
                 latency_us: float = 5.0):
        if n_shards < 1:
            raise DiscoveryError("need at least one shard")
        if scheme not in (SCHEME_SHARDED, "e2e"):
            raise DiscoveryError(f"unknown scheme {scheme!r}")
        self.scheme = scheme
        self.sim = Simulator(seed=seed)
        self.net = Network(self.sim)
        self.net.add_switch("s0")
        self.responders = tuple(f"resp{i + 1}" for i in range(n_responders))
        self.shard_hosts = tuple(f"shard{i + 1}" for i in range(n_shards))
        for name in ("driver",) + self.responders + self.shard_hosts:
            self.net.add_host(name)
            self.net.connect(name, "s0", latency_us=latency_us)
        self.shard_map = ShardMap(self.shard_hosts)
        self.allocator = IDAllocator(seed=seed + 1)
        self.homes: Dict[str, ObjectHome] = {}
        self.advertisers: Dict[str, ShardAdvertiser] = {}
        for name in self.responders:
            home = ObjectHome(self.net.host(name),
                              ObjectSpace(self.allocator, host_name=name))
            self.homes[name] = home
            self.net.metrics.register(f"discovery.home.{name}", home.tracer)
        self.shards: Dict[str, ShardDirectory] = {}
        driver = self.net.host("driver")
        if scheme == SCHEME_SHARDED:
            for name in self.shard_hosts:
                self.shards[name] = ShardDirectory(
                    self.net.host(name), lease_ttl_us=lease_ttl_us,
                    metrics=self.net.metrics)
            for name in self.responders:
                self.advertisers[name] = ShardAdvertiser(
                    self.net.host(name), self.shard_map,
                    ack_timeout_us=ack_timeout_us,
                    refresh_interval_us=refresh_interval_us,
                    metrics=self.net.metrics)
            self.accessor = LeaseCachingResolver(
                driver, self.shard_map, timeout_us=resolver_timeout_us,
                max_retries=max_retries, use_leases=use_leases,
                metrics=self.net.metrics)
        else:
            self.accessor = E2EResolver(driver, metrics=self.net.metrics)
        self.object_size = object_size
        self.location: Dict[ObjectID, str] = {}

    # -- object lifecycle ---------------------------------------------------
    def create_object(self, responder: str) -> ObjectID:
        home = self.homes[responder]
        obj = home.space.create_object(size=self.object_size)
        self.location[obj.oid] = responder
        if self.scheme == SCHEME_SHARDED:
            self.advertisers[responder].advertise(obj.oid)
        return obj.oid

    def move(self, oid: ObjectID) -> str:
        """Migrate ``oid`` to the next responder; returns the new holder."""
        src = self.location[oid]
        dst = self.responders[
            (self.responders.index(src) + 1) % len(self.responders)]
        move_object(oid, self.homes[src], self.homes[dst])
        self.location[oid] = dst
        if self.scheme == SCHEME_SHARDED:
            self.advertisers[src].withdraw(oid)
            self.advertisers[dst].advertise(oid)
        return dst

    def settle(self, us: float = 2_000.0):
        """Process: let control traffic (advertise/ack cycles) finish."""
        yield Timeout(us)

    def quiesce(self) -> None:
        """Retire every advertisement monitor so the event heap drains."""
        for advertiser in self.advertisers.values():
            advertiser.stop()

    def advertise_load(self) -> Dict[str, int]:
        """Advertisements accepted per shard host."""
        return {name: shard.tracer.counters.get("shard.advertised")
                for name, shard in self.shards.items()}


def _zipf_cdf(n: int, s: float) -> List[float]:
    weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    return cdf


def run_sharded_point(
    n_shards: int,
    n_objects: int = 40,
    n_accesses: int = 100,
    zipf_s: float = 1.1,
    percent_moved: int = 0,
    gap_us: float = 0.0,
    seed: int = 42,
    scheme: str = SCHEME_SHARDED,
    use_leases: bool = True,
    lease_ttl_us: float = 100_000.0,
    refresh_interval_us: Optional[float] = None,
    shard_crash_window: Optional[Tuple[float, float]] = None,
) -> ShardedSweepResult:
    """One E18 sweep point: a Zipf-skewed access stream over the sharded
    plane (or the E2E baseline on the same fabric).

    ``shard_crash_window=(from_us, until_us)`` crashes the shard owning
    the *hottest* object's directory entry for that interval via a
    :class:`FaultPlan` — lease-covered accesses keep running at 1 RTT,
    and misses fail over to the successor shard (counter-visible as
    ``shard.failover``).  ``gap_us`` spaces accesses out so a stream can
    span the window.
    """
    if not 0 <= percent_moved <= 100:
        raise ValueError("percent_moved must be in [0, 100]")
    bed = ShardedTestbed(
        n_shards, seed=seed, scheme=scheme, use_leases=use_leases,
        lease_ttl_us=lease_ttl_us, refresh_interval_us=refresh_interval_us)
    rng = bed.sim.rng
    pool = [bed.create_object(bed.responders[i % len(bed.responders)])
            for i in range(n_objects)]
    cdf = _zipf_cdf(n_objects, zipf_s)
    if shard_crash_window is not None:
        if bed.scheme != SCHEME_SHARDED:
            raise DiscoveryError("shard crash windows need the sharded scheme")
        victim = bed.shard_map.shard_of(pool[0])
        FaultInjector(bed.net, FaultPlan().crash_window(
            victim, *shard_crash_window)).arm()
    records: List[AccessRecord] = []

    def driver_proc():
        yield from bed.settle()
        for oid in pool:  # warm leases / destination caches (not measured)
            yield bed.sim.spawn(bed.accessor.access(oid), name="warmup")
        for _ in range(n_accesses):
            oid = pool[bisect.bisect_left(cdf, rng.random())]
            if percent_moved and rng.random() < percent_moved / 100.0:
                bed.move(oid)
                yield from bed.settle(200.0)
            record = yield bed.sim.spawn(bed.accessor.access(oid),
                                         name="access")
            records.append(record)
            if gap_us > 0:
                yield Timeout(gap_us)
        bed.quiesce()
        return None

    bed.sim.run_process(driver_proc(), name="sharded-driver")
    latencies = [r.latency_us for r in records if r.ok]
    stats = summarize(latencies) if latencies else None
    snapshot = bed.net.metrics.snapshot()["counters"]
    lease = (bed.accessor.tracer.counters if bed.scheme == SCHEME_SHARDED
             else None)
    failovers = sum(adv.tracer.counters.get("shard.failover")
                    for adv in bed.advertisers.values())
    if lease is not None:
        failovers += lease.get("shard.failover")
    return ShardedSweepResult(
        scheme=bed.scheme,
        n_shards=n_shards,
        use_leases=use_leases,
        mean_rtt_us=stats.mean if stats else 0.0,
        p95_rtt_us=stats.p95 if stats else 0.0,
        mean_round_trips=(sum(r.round_trips for r in records)
                          / max(len(records), 1)),
        failures=sum(1 for r in records if not r.ok),
        lease_hits=lease.get("lease.hit") if lease else 0,
        lease_misses=lease.get("lease.miss") if lease else 0,
        lease_invalidated=lease.get("lease.invalidated") if lease else 0,
        shard_failovers=failovers,
        advertise_load=bed.advertise_load(),
        counters=dict(sorted(snapshot.items())),
        records=records,
    )
