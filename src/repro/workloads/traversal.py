"""Remote data-structure traversal: linked records across objects.

One of the §1 motivating cases RPC cannot express: "the invoker may wish
to traverse a remote data structure."  This module builds linked lists
whose records span many objects (each ``next`` field is a 64-bit
invariant pointer, cross-object hops go through FOTs) and provides both
traversal strategies:

* a *mobile-code* traversal (registered as ``traverse_list`` for the
  runtime): the computation moves to the data and walks it locally;
* a *remote* traversal driven from the invoker: every hop is a network
  round trip — what shoehorning traversal onto RPC/remote-read costs.

It also feeds the prefetch experiment (E8): traversal order follows
pointers, so the FOT reachability graph predicts the next objects
exactly, while allocation-order adjacency is only right when layout
happens to match link order.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..core.objects import MemObject
from ..core.refs import GlobalRef
from ..core.space import ObjectSpace
from ..core.views import Field, StructLayout

__all__ = [
    "LIST_NODE",
    "build_linked_list",
    "local_traverse",
    "register_traversal",
    "register_proxied_traversal",
]

# One list record: a next pointer and an inline payload.
LIST_NODE = StructLayout("list_node", [
    Field("next", "ptr"),
    Field("value", "u64"),
    Field("payload", "bytes", length=48),
])


def build_linked_list(
    space: ObjectSpace,
    n_records: int,
    records_per_object: int,
    rng: Optional[random.Random] = None,
    shuffle_objects: bool = False,
) -> Tuple[GlobalRef, List[MemObject], List[int]]:
    """Build an ``n_records`` list spread over ceil(n/records_per_object)
    objects; returns (head ref, objects in creation order, values in
    link order).

    ``shuffle_objects=True`` assigns records to objects in a shuffled
    order, so link order and allocation order disagree — the case that
    separates reachability prefetching from the adjacency heuristic.
    """
    if n_records <= 0 or records_per_object <= 0:
        raise ValueError("need positive record counts")
    rng = rng if rng is not None else random.Random(0)
    n_objects = (n_records + records_per_object - 1) // records_per_object
    object_size = 64 + LIST_NODE.size * records_per_object
    objects = [
        space.create_object(size=object_size, label=f"list-chunk-{i}")
        for i in range(n_objects)
    ]
    # Which object hosts record i?
    assignment = [i // records_per_object for i in range(n_records)]
    if shuffle_objects:
        chunk_order = list(range(n_objects))
        rng.shuffle(chunk_order)
        assignment = [chunk_order[a] for a in assignment]
    views = []
    values = []
    for i in range(n_records):
        view = LIST_NODE.allocate_in(objects[assignment[i]])
        value = rng.randrange(1 << 32)
        view.set("value", value)
        view.set("payload", f"record-{i}".encode())
        views.append(view)
        values.append(value)
    # Link them: record i -> record i+1 (cross-object pointers go
    # through the FOT automatically).
    for i in range(n_records - 1):
        views[i].set_pointer_to("next", views[i + 1])
    head = GlobalRef(views[0].obj.oid, views[0].offset, "read")
    return head, objects, values


def local_traverse(space: ObjectSpace, head: GlobalRef,
                   max_steps: int = 1 << 20) -> List[int]:
    """Walk the list entirely within one space; returns the values.

    Requires every chunk to be resident — the state the mobile-code
    path reaches after staging.
    """
    values: List[int] = []
    oid, offset = head.oid, head.offset
    for _ in range(max_steps):
        obj = space.get(oid)
        view = LIST_NODE.view(obj, offset)
        values.append(view.get("value"))
        pointer = view.get("next")
        if pointer.is_null:
            return values
        oid, offset = obj.resolve(pointer)
    raise RuntimeError("list longer than max_steps (cycle?)")


def register_traversal(registry) -> None:
    """Register the mobile-code traversal entry ``traverse_list``.

    The function runs where the runtime placed it; if chunks are staged
    (eager mode) every hop is local, while lazy mode demand-reads record
    by record — both paths exercise the same pointer decoding.
    """
    if "traverse_list" in registry:
        return

    def traverse_list(ctx, args):
        """Mobile-code entry: walk the list from ``args['head']``,
        returning {'sum', 'count'} over up to ``args['limit']`` records."""
        head: GlobalRef = args["head"]
        limit = args.get("limit", 1 << 20)
        total = 0
        count = 0
        ref = head
        for _ in range(limit):
            raw = yield ctx.read(ref, 0, LIST_NODE.size)
            value = int.from_bytes(raw[8:16], "big")
            total += value
            count += 1
            from ..core.pointers import InvariantPointer

            pointer = InvariantPointer.from_bytes(raw[0:8])
            if pointer.is_null:
                break
            if pointer.is_internal:
                ref = GlobalRef(ref.oid, pointer.offset, ref.mode)
            else:
                next_ref = yield ctx.follow(ref, 0)
                ref = next_ref
        return {"sum": total, "count": count}

    registry.register("traverse_list", traverse_list)


def register_proxied_traversal(registry) -> None:
    """Register ``traverse_list_proxied``, the E19 ablation entry.

    The same pointer walk as ``traverse_list``, but it accepts either a
    staged :class:`GlobalRef` head (the eager arm) or a lazy
    :class:`~repro.core.proxies.ObjectProxy` head (``MODE_PROXIED``),
    and spends a fixed ``work_us`` of compute per record — execution
    time a reachability prefetch can hide transfers under (PROXIES.md).
    """
    if "traverse_list_proxied" in registry:
        return

    def traverse_list_proxied(ctx, args):
        """Walk the list from ``args['head']`` (ref or proxy), spending
        ``args['work_us']`` per record; returns {'sum', 'count'}."""
        from ..core.pointers import InvariantPointer
        from ..core.proxies import ObjectProxy
        from ..sim import Timeout

        head = args["head"]
        limit = args.get("limit", 1 << 20)
        work_us = float(args.get("work_us", 0.0))
        total = 0
        count = 0
        if isinstance(head, ObjectProxy):
            proxy, offset = head, head.ref.offset
            for _ in range(limit):
                raw = yield from proxy.read(offset, LIST_NODE.size)
                total += int.from_bytes(raw[8:16], "big")
                count += 1
                if work_us:
                    yield Timeout(work_us)
                pointer = InvariantPointer.from_bytes(raw[0:8])
                if pointer.is_null:
                    break
                next_ref = yield from proxy.follow(offset)
                if next_ref.oid != proxy.oid:
                    proxy = ctx.proxy(next_ref)
                offset = next_ref.offset
        else:
            ref = head
            for _ in range(limit):
                raw = yield ctx.read(ref, 0, LIST_NODE.size)
                total += int.from_bytes(raw[8:16], "big")
                count += 1
                if work_us:
                    yield Timeout(work_us)
                pointer = InvariantPointer.from_bytes(raw[0:8])
                if pointer.is_null:
                    break
                if pointer.is_internal:
                    ref = GlobalRef(ref.oid, pointer.offset, ref.mode)
                else:
                    ref = yield ctx.follow(ref, 0)
        return {"sum": total, "count": count}

    registry.register("traverse_list_proxied", traverse_list_proxied)
