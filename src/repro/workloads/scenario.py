"""The full §2 / Figure 1 scenario: Alice, Bob, Carol, and Dave.

A mobile device (**alice**) holds an activation and wants a
classification that needs a sparse global-model partition living on an
overloaded cloud host (**bob**) while a second cloud host (**carol**)
sits idle.  A second edge device (**dave**) is *capable* of running the
inference itself.

:func:`build_scenario` constructs the environment once;
:func:`run_strategy` executes the classification under one of the four
invocation models the paper contrasts:

* ``rpc_via_alice``   — Figure 1(1): Alice pulls the partition from Bob
  by RPC, then pushes it to Carol by RPC.  Two full serialized copies of
  the model cross the network, both through Alice's uplink.
* ``rpc_direct_pull`` — Figure 1(2): Alice tells Carol to pull from Bob.
  One serialized copy less, but Alice still hard-codes the placement.
* ``refrpc``          — Wang et al.: Alice passes a reference; the
  *system* moves bytes (no marshalling walk) — but Alice still names the
  executor, so the computation cannot land anywhere she didn't say.
* ``rendezvous``      — Figure 1(3): Alice invokes a code reference
  against a data reference.  The placement engine picks the executor
  (idle Carol — or Dave's own silicon when Dave invokes), and the
  partition moves as one byte-level copy along the shortest path.

Every run reports latency, the bytes each strategy pushed through the
invoker's access link, and how many placement decisions the application
code had to make (the "orchestration steps" of Figure 1's red arrows).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from ..core import FunctionRegistry, GlobalRef
from ..net.topology import Network
from ..rpc import (
    RemoteRef,
    RefRpcClient,
    RefRpcServer,
    RpcClient,
    RpcServer,
)
from ..runtime import GlobalSpaceRuntime
from ..sim import Simulator
from .inference import (
    Activation,
    ModelPartition,
    dot_product,
    partition_flops,
    write_partition_object,
)

__all__ = ["Scenario", "StrategyResult", "build_scenario", "run_strategy",
           "STRATEGIES"]

STRATEGIES = ("rpc_via_alice", "rpc_direct_pull", "refrpc", "rendezvous")

EDGE_LINK_LATENCY_US = 200.0   # edge devices sit behind a slower access link
CLOUD_LINK_LATENCY_US = 5.0


@dataclass
class StrategyResult:
    """What one strategy run measured."""

    strategy: str
    invoker: str
    score: float
    latency_us: float
    executed_at: str
    invoker_uplink_bytes: int   # model bytes squeezed through the edge link
    orchestration_steps: int    # placement decisions made by app code


class Scenario:
    """The constructed environment, ready to run strategies."""

    def __init__(self, sim: Simulator, net: Network,
                 runtime: GlobalSpaceRuntime, partition: ModelPartition,
                 activation: Activation, partition_obj, code_ref: GlobalRef,
                 servers: Dict[str, object], clients: Dict[str, object]):
        self.sim = sim
        self.net = net
        self.runtime = runtime
        self.partition = partition
        self.activation = activation
        self.partition_obj = partition_obj
        self.code_ref = code_ref
        self.servers = servers
        self.clients = clients

    def uplink_bytes(self, host: str) -> int:
        """Bytes currently carried by ``host``'s access link."""
        node = self.net.node(host)
        return sum(link.bytes_carried for link in node.links)

    def expected_score(self) -> float:
        """Ground-truth classification score."""
        return dot_product(self.partition, self.activation)


def build_scenario(seed: int = 42, partition_entries: int = 20_000,
                   activation_dim: int = 256, bob_load: int = 12,
                   dave_speed: float = 1.5,
                   dave_has_local_model: bool = False) -> Scenario:
    """Construct the two-edge/two-cloud environment.

    ``dave_speed`` > 1 makes Dave the §5 case: an edge device with
    enough silicon to run the inference itself.  With
    ``dave_has_local_model=True`` Dave also already holds a replica of
    the partition (§2: a device "in possession of a locally-trained
    model") — under the rendezvous model his invocations then run
    entirely on-device, which no RPC variant can express.
    """
    sim = Simulator(seed=seed)
    net = Network(sim, default_latency_us=CLOUD_LINK_LATENCY_US)
    net.add_switch("edge_sw")
    net.add_switch("cloud_sw")
    net.connect("edge_sw", "cloud_sw", latency_us=50.0)
    for name in ("alice", "dave"):
        net.add_host(name)
        net.connect(name, "edge_sw", latency_us=EDGE_LINK_LATENCY_US)
    for name in ("bob", "carol"):
        net.add_host(name)
        net.connect(name, "cloud_sw", latency_us=CLOUD_LINK_LATENCY_US)

    registry = FunctionRegistry()

    def classify_mobile(ctx, args):
        image = yield ctx.read(args["partition"], 0,
                               args["partition_bytes"])
        partition = ModelPartition.unpack(image)
        activation = Activation(args["activation"])
        return dot_product(partition, activation)

    registry.register("classify_mobile", classify_mobile)

    from ..core import CostModel

    # One cost model, calibrated to the simulated links (10 Gbps), shared
    # by the placement estimator and the ref-RPC transfer charges so no
    # stack gets a discounted network.
    cost_model = CostModel(link_bandwidth_gbps=10.0)
    runtime = GlobalSpaceRuntime(net, registry, cost_model=cost_model)
    # Alice cannot host the fragment (§2: "the global model fragment is
    # too large" for her device) — 64 KiB of staging memory.
    runtime.add_node("alice", speed=0.2, capacity_bytes=64 * 1024)
    runtime.add_node("bob", speed=1.0)
    runtime.add_node("carol", speed=1.0)
    runtime.add_node("dave", speed=dave_speed)
    runtime.node("bob").active_jobs = bob_load

    rng = random.Random(seed)
    partition = ModelPartition.generate(rng, 0, partition_entries)
    activation = Activation.generate(rng, activation_dim)
    partition_obj = write_partition_object(runtime.node("bob").space, partition,
                                           label="global-model-partition")
    runtime.adopt_object("bob", partition_obj)
    if dave_has_local_model:
        runtime.node("dave").space.insert(partition_obj.clone())
        runtime.note_copy(partition_obj.oid, "dave")
    code_obj, code_ref = runtime.create_code("alice", "classify_mobile",
                                             text_size=4096)
    # Both edge devices ship with the classifier code installed — code,
    # like data, can be replicated ahead of time in the global space.
    runtime.node("dave").space.insert(code_obj.clone())
    runtime.note_copy(code_obj.oid, "dave")

    # RPC plumbing on every cloud host: Bob serves the model, both serve
    # inference; edge devices get clients.
    compute_us = runtime.cost_model.compute_time_us(partition_flops(partition))
    servers: Dict[str, object] = {}
    image = partition.pack()

    def fetch_partition():
        return image

    def infer(partition_image, activation):
        return dot_product(ModelPartition.unpack(partition_image),
                           Activation(activation))

    for cloud in ("bob", "carol"):
        server = RpcServer(net.host(cloud), workers=4)
        server.register("fetch_partition", fetch_partition,
                        compute_us=5.0)
        server.register("infer", infer, compute_us=compute_us)
        servers[cloud] = server
    # Fig 1(2): a direct-pull method on Carol — she fetches from Bob
    # herself, then infers.  The extra RPC Alice had to ask for.
    carol_client = RpcClient(net.host("carol"))

    def infer_pull(activation):
        partition_image = yield from carol_client.call("bob", "fetch_partition")
        return infer(partition_image, activation)

    servers["carol"].register("infer_pull", infer_pull, compute_us=compute_us)
    refrpc_servers = {}
    for cloud in ("bob", "carol"):
        refrpc_server = RefRpcServer(
            net.host(cloud),
            locator=lambda oid: ("bob", partition_obj.wire_size),
            distance=runtime._effective_distance,
            fetch_object=lambda oid: image,
            cost_model=runtime.cost_model,
        )
        refrpc_server.register("infer_ref", infer, compute_us=compute_us)
        refrpc_servers[cloud] = refrpc_server

    clients: Dict[str, object] = {}
    for edge in ("alice", "dave"):
        clients[edge] = {
            "rpc": RpcClient(net.host(edge)),
            "refrpc": RefRpcClient(net.host(edge)),
        }
    servers["refrpc"] = refrpc_servers

    return Scenario(sim, net, runtime, partition, activation, partition_obj,
                    code_ref, servers, clients)


def run_strategy(scenario: Scenario, strategy: str, invoker: str = "alice"):
    """Process: run one classification under ``strategy`` from ``invoker``.

    Returns a :class:`StrategyResult`.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}")
    sim = scenario.sim
    start = sim.now
    uplink_before = scenario.uplink_bytes(invoker)
    rpc: RpcClient = scenario.clients[invoker]["rpc"]
    activation_values = scenario.activation.values

    if strategy == "rpc_via_alice":
        # Fig 1(1): pull the model to the invoker, push it to Carol.
        image = yield from rpc.call("bob", "fetch_partition")
        score = yield from rpc.call("carol", "infer",
                                    partition_image=image,
                                    activation=activation_values)
        executed_at = "carol"
        steps = 3  # chose Bob, moved data, chose Carol

    elif strategy == "rpc_direct_pull":
        # Fig 1(2): Carol pulls from Bob herself; Alice still chose Carol.
        score = yield from rpc.call("carol", "infer_pull",
                                    activation=activation_values)
        executed_at = "carol"
        steps = 2  # chose Carol, and asked for the pull-from-Bob API

    elif strategy == "refrpc":
        refrpc: RefRpcClient = scenario.clients[invoker]["refrpc"]
        score = yield from refrpc.call(
            "carol", "infer_ref",
            partition_image=RemoteRef(scenario.partition_obj.oid),
            activation=activation_values)
        executed_at = "carol"
        steps = 1  # still had to name Carol

    else:  # rendezvous
        # Candidates: the invoker's own device plus the cloud — another
        # user's edge device is never a legal placement for this job.
        result = yield sim.spawn(scenario.runtime.invoke(
            invoker, scenario.code_ref,
            data_refs={"partition": GlobalRef(scenario.partition_obj.oid, 0,
                                              "read")},
            values={"activation": activation_values,
                    "partition_bytes": scenario.partition_obj.size},
            flops=partition_flops(scenario.partition),
            candidates=[invoker, "bob", "carol"],
        ))
        score = result.value
        executed_at = result.executed_at
        steps = 0  # the system placed the computation

    return StrategyResult(
        strategy=strategy,
        invoker=invoker,
        score=score,
        latency_us=sim.now - start,
        executed_at=executed_at,
        invoker_uplink_bytes=scenario.uplink_bytes(invoker) - uplink_before,
        orchestration_steps=steps,
    )
