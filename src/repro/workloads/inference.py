"""The §2 workload: distributed inference over sparse giant models.

The motivating example: edge devices (Alice, Dave) hold activations and
small local models; cloud hosts (Bob, Carol) hold partitions of a sparse
global model, personalized per user.  Model-serving over RPC pays a
deserialize-and-load step at request time that §2 (citing TriMS) puts at
"as much as 70% of the processing time".

A partition is a list of (index, weight) pairs — genuinely sparse, so
the RPC serializer must walk every entry while the object-space path
moves the same partition as a flat binary image.  Both representations
hold identical numbers, and :func:`dot_product` is the shared inference
kernel, so the comparison isolates exactly the marshalling cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.objects import MemObject
from ..core.pointers import POINTER_BYTES, InvariantPointer
from ..core.refs import GlobalRef
from ..core.space import ObjectSpace

__all__ = [
    "ModelPartition",
    "SparseModel",
    "Activation",
    "dot_product",
    "write_partition_object",
    "read_partition_object",
    "build_partition_chain",
    "register_proxied_serving",
    "personalize",
    "partition_flops",
    "serving_compute_us",
    "SERVING_COMPUTE_RATIO",
]

# Calibration for the §2 / TriMS claim: model-serving spends ~70% of its
# processing time deserializing and loading the model, so the remaining
# request work is ~0.43x the deserialization time
# (0.7 = d / (d + 0.43 d)).  EXPERIMENTS.md documents this calibration.
SERVING_COMPUTE_RATIO = 0.43

_ENTRY_BYTES = 12  # 4B index + 8B weight (fixed-point) in the packed image
_WEIGHT_SCALE = 1 << 32


@dataclass
class ModelPartition:
    """One shard of a sparse model: (feature index, weight) pairs."""

    partition_id: int
    entries: List[Tuple[int, float]]

    @classmethod
    def generate(cls, rng: random.Random, partition_id: int,
                 n_entries: int, index_space: int = 1 << 24) -> "ModelPartition":
        """Deterministically synthesize a partition from a seeded RNG."""
        if n_entries <= 0:
            raise ValueError("a partition needs at least one entry")
        entries = [
            (rng.randrange(index_space), rng.uniform(-1.0, 1.0))
            for _ in range(n_entries)
        ]
        return cls(partition_id, entries)

    @property
    def n_entries(self) -> int:
        """Number of (index, weight) entries."""
        return len(self.entries)

    @property
    def packed_size(self) -> int:
        """Bytes of the flat binary image (the object-space encoding)."""
        return 8 + _ENTRY_BYTES * len(self.entries)

    def to_value(self) -> Dict:
        """Codec-friendly structured value (the RPC encoding): the
        serializer must walk every entry of the nested list."""
        return {
            "partition_id": self.partition_id,
            "entries": [[index, weight] for index, weight in self.entries],
        }

    @classmethod
    def from_value(cls, value: Dict) -> "ModelPartition":
        """Rebuild from the codec-friendly structured value."""
        return cls(value["partition_id"],
                   [(index, weight) for index, weight in value["entries"]])

    def pack(self) -> bytes:
        """Flat binary image: header + fixed-width entries.

        Weights are stored as signed 64-bit fixed point so the image is
        byte-exact across hosts (floats would be too, but fixed point
        keeps the equality checks in tests simple).
        """
        parts = [self.partition_id.to_bytes(4, "big"),
                 len(self.entries).to_bytes(4, "big")]
        for index, weight in self.entries:
            parts.append(index.to_bytes(4, "big"))
            parts.append(int(weight * _WEIGHT_SCALE).to_bytes(8, "big", signed=True))
        return b"".join(parts)

    @classmethod
    def unpack(cls, raw: bytes) -> "ModelPartition":
        """Rebuild from the flat binary image."""
        partition_id = int.from_bytes(raw[0:4], "big")
        count = int.from_bytes(raw[4:8], "big")
        entries = []
        for i in range(count):
            at = 8 + i * _ENTRY_BYTES
            index = int.from_bytes(raw[at : at + 4], "big")
            fixed = int.from_bytes(raw[at + 4 : at + 12], "big", signed=True)
            entries.append((index, fixed / _WEIGHT_SCALE))
        return cls(partition_id, entries)


@dataclass
class SparseModel:
    """A sparse model as a list of partitions."""

    partitions: List[ModelPartition]

    @classmethod
    def generate(cls, seed: int, n_partitions: int,
                 entries_per_partition: int) -> "SparseModel":
        """Deterministically synthesize an instance from a seed."""
        rng = random.Random(seed)
        return cls([
            ModelPartition.generate(rng, pid, entries_per_partition)
            for pid in range(n_partitions)
        ])

    @property
    def total_entries(self) -> int:
        """Entries across all partitions."""
        return sum(p.n_entries for p in self.partitions)


@dataclass
class Activation:
    """An input vector from an edge device."""

    values: List[float]

    @classmethod
    def generate(cls, rng: random.Random, dimension: int) -> "Activation":
        """Deterministically synthesize an instance from a seed."""
        if dimension <= 0:
            raise ValueError("activation needs a positive dimension")
        return cls([rng.uniform(-1.0, 1.0) for _ in range(dimension)])

    @property
    def size_bytes(self) -> int:
        """Total modelled wire size in bytes."""
        return 8 * len(self.values)


def dot_product(partition: ModelPartition, activation: Activation) -> float:
    """The inference kernel both stacks share: a sparse dot product.

    Feature indices fold into the activation dimension, so any
    partition/activation pair composes.
    """
    dim = len(activation.values)
    return sum(weight * activation.values[index % dim]
               for index, weight in partition.entries)


def partition_flops(partition: ModelPartition) -> float:
    """Nominal FLOP count for placement cost estimates (2 per entry)."""
    return 2.0 * partition.n_entries


def serving_compute_us(partition_bytes: int, cost_model) -> float:
    """The non-deserialization share of serving one request over a
    ``partition_bytes`` model (inference + request handling), calibrated
    so that deserialize+load is ~70% of RPC-path processing time."""
    return cost_model.deserialize_time_us(partition_bytes) * SERVING_COMPUTE_RATIO


def personalize(base: ModelPartition, rng: random.Random,
                fraction: float = 0.1) -> ModelPartition:
    """Last-mile customization: perturb ``fraction`` of the weights.

    Models the §2 point that inference tasks for different users hit
    *slightly different* models, defeating a shared warm cache.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    entries = list(base.entries)
    n_changes = int(len(entries) * fraction)
    for _ in range(n_changes):
        at = rng.randrange(len(entries))
        index, weight = entries[at]
        entries[at] = (index, weight + rng.uniform(-0.05, 0.05))
    return ModelPartition(base.partition_id, entries)


def write_partition_object(space: ObjectSpace, partition: ModelPartition,
                           label: str = "") -> MemObject:
    """Store a partition as a flat object image in ``space``."""
    image = partition.pack()
    obj = space.create_object(size=len(image),
                              label=label or f"partition-{partition.partition_id}")
    obj.write(0, image)
    return obj


def read_partition_object(obj: MemObject) -> ModelPartition:
    """Rebuild a partition from its object image (a byte-level copy —
    contrast with the serializer walk in :mod:`repro.rpc.serializer`)."""
    return ModelPartition.unpack(obj.read(0, obj.size))


def build_partition_chain(
    space: ObjectSpace, model: SparseModel, label: str = "pchain",
) -> Tuple[GlobalRef, List[MemObject]]:
    """Store the model as a chain of per-partition objects.

    Each object is ``[8B next pointer][packed image]``, and partition
    i -> i+1 is linked through the FOT — so both an embedded-pointer
    walk and a pure reachability (FOT) walk see the same chain.  This is
    the shape the §2 serving path takes once partitions are objects
    instead of RPC payloads: the next shard is *reachable*, which is
    exactly what the prefetcher needs (PROXIES.md).  Returns the head
    reference and the objects in chain order.
    """
    objs = []
    for partition in model.partitions:
        image = partition.pack()
        obj = space.create_object(size=POINTER_BYTES + len(image),
                                  label=f"{label}-{partition.partition_id}")
        obj.write(POINTER_BYTES, image)
        objs.append(obj)
    for i, obj in enumerate(objs):
        if i + 1 < len(objs):
            index = obj.fot.add(objs[i + 1].oid)
            pointer = InvariantPointer.external(index, 0)
        else:
            pointer = InvariantPointer.null()
        obj.write(0, pointer.to_bytes())
    return GlobalRef(objs[0].oid, 0, "read"), objs


def register_proxied_serving(registry) -> None:
    """Register ``serve_partition_chain``, the inference E19 entry.

    Walks a :func:`build_partition_chain` chain from ``args['head']`` —
    a staged :class:`GlobalRef` (eager arm) or an
    :class:`~repro.core.proxies.ObjectProxy` (``MODE_PROXIED``) — and
    scores ``args['activation']`` against every partition, spending
    ``args['work_us']`` of request handling per partition.
    """
    if "serve_partition_chain" in registry:
        return

    def serve_partition_chain(ctx, args):
        """Score the activation against each partition of the chain;
        returns {'score', 'partitions'}."""
        from ..core.proxies import ObjectProxy
        from ..sim import Timeout

        head = args["head"]
        activation = Activation(list(args["activation"]))
        work_us = float(args.get("work_us", 0.0))
        score = 0.0
        served = 0
        if isinstance(head, ObjectProxy):
            proxy = head
            while proxy is not None:
                raw = yield from proxy.read_all()
                partition = ModelPartition.unpack(raw[POINTER_BYTES:])
                score += dot_product(partition, activation)
                served += 1
                if work_us:
                    yield Timeout(work_us)
                next_ref = yield from proxy.follow(0)
                proxy = ctx.proxy(next_ref) if next_ref is not None else None
        else:
            ref = head
            while ref is not None:
                header = yield ctx.read(ref, POINTER_BYTES, 8)
                n_entries = int.from_bytes(header[4:8], "big")
                image = yield ctx.read(ref, POINTER_BYTES,
                                       8 + _ENTRY_BYTES * n_entries)
                partition = ModelPartition.unpack(image)
                score += dot_product(partition, activation)
                served += 1
                if work_us:
                    yield Timeout(work_us)
                ref = yield ctx.follow(ref, 0)
        return {"score": score, "partitions": served}

    registry.register("serve_partition_chain", serve_partition_chain)
