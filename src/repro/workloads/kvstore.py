"""The fronted key-value store: RPC's home turf.

§2/§3.1 concede that "RPC shines in situations where... an RPC endpoint
either fronts large data [or] large compute... with small arguments and
return values — often manifesting as something like a fronted key-value
store service."  Experiment E11 runs the same KV workload over both
stacks to find where the concession ends: as values grow and re-access
rises, the object-space path (references + local caching) overtakes
call-by-value.

Two implementations of one interface:

* :class:`RpcKVService` — a classic RPC server with ``get``/``put``;
  every ``get`` serializes the value and ships it whole.
* :class:`ObjectKVService` — values live in objects; a ``get`` returns a
  24-byte reference, and the client reads through it (demand reads for
  one-shot access, a full fetch when it expects re-access — after which
  re-reads are local and free of network traffic).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.refs import GlobalRef
from ..runtime.engine import GlobalSpaceRuntime
from ..rpc.stubs import RpcClient, RpcServer

__all__ = ["RpcKVService", "RpcKVClient", "ObjectKVService", "ObjectKVClient"]


class RpcKVService:
    """RPC-fronted store: values are serialized into every reply."""

    def __init__(self, server: RpcServer, lookup_us: float = 2.0):
        self.server = server
        self._data: Dict[str, bytes] = {}
        server.register("kv_get", self._get, compute_us=lookup_us)
        server.register("kv_put", self._put, compute_us=lookup_us)

    def _get(self, key: str) -> bytes:
        if key not in self._data:
            raise KeyError(key)
        return self._data[key]

    def _put(self, key: str, value: bytes) -> bool:
        self._data[key] = bytes(value)
        return True

    def preload(self, items: Dict[str, bytes]) -> None:
        """Bulk-insert initial key/value pairs."""
        self._data.update(items)


class RpcKVClient:
    """Caller side of the RPC store."""

    def __init__(self, client: RpcClient, endpoint: str):
        self.client = client
        self.endpoint = endpoint

    def get(self, key: str):
        """Process: fetch the whole value by RPC (serialize + ship)."""
        value = yield from self.client.call(self.endpoint, "kv_get", key=key)
        return value

    def put(self, key: str, value: bytes):
        """Process: store a value by RPC."""
        result = yield from self.client.call(self.endpoint, "kv_put",
                                             key=key, value=value)
        return result


class ObjectKVService:
    """Object-space store: the server maps keys to object references.

    The directory lives on the serving node; ``lookup`` is a tiny RPC
    returning a 24-byte reference.  Value bytes never pass through the
    serializer — clients read them straight out of the object layer.
    """

    def __init__(self, runtime: GlobalSpaceRuntime, node_name: str,
                 server: RpcServer, lookup_us: float = 2.0):
        self.runtime = runtime
        self.node_name = node_name
        self._directory: Dict[str, Tuple[str, int]] = {}  # key -> (oid hex, size)
        server.register("kv_lookup", self._lookup, compute_us=lookup_us)

    def _lookup(self, key: str):
        entry = self._directory.get(key)
        if entry is None:
            raise KeyError(key)
        return {"oid": entry[0], "size": entry[1]}

    def put_local(self, key: str, value: bytes) -> GlobalRef:
        """Server-side insert: place the value in a fresh object."""
        obj = self.runtime.create_object(self.node_name, size=len(value),
                                         label=f"kv:{key}")
        obj.write(0, value)
        self._directory[key] = (str(obj.oid), len(value))
        return GlobalRef(obj.oid, 0, "read")


class ObjectKVClient:
    """Caller side of the object-space store.

    ``get`` resolves the key to a reference (cached after first use),
    then reads the value: a demand read for one-shot access, or an
    ``ensure_local`` fetch when ``cache=True`` so later gets are local.
    """

    def __init__(self, runtime: GlobalSpaceRuntime, node_name: str,
                 client: RpcClient, endpoint: str):
        self.runtime = runtime
        self.node = runtime.node(node_name)
        self.client = client
        self.endpoint = endpoint
        self._refs: Dict[str, Tuple[GlobalRef, int]] = {}

    def _resolve(self, key: str):
        cached = self._refs.get(key)
        if cached is not None:
            return cached
        entry = yield from self.client.call(self.endpoint, "kv_lookup", key=key)
        from ..core.objectid import ObjectID

        ref = GlobalRef(ObjectID.from_hex(entry["oid"]), 0, "read")
        self._refs[key] = (ref, entry["size"])
        return ref, entry["size"]

    def get(self, key: str, cache: bool = False):
        """Process: read the value bytes behind ``key``.

        ``cache=True`` pulls the whole object here first; later gets of
        the same key are then served locally.
        """
        ref, size = yield from self._resolve(key)
        if cache or ref.oid in self.node.space:
            if ref.oid not in self.node.space:
                yield self.node.sim.spawn(self.node.fetch_object(ref.oid),
                                          name=f"kv-fetch-{key}")
            return self.node.space.get(ref.oid).read(0, size)
        data = yield from self.node.remote_read(ref.oid, 0, size)
        return data
