"""Access-pattern generators for workload drivers.

Discovery-scheme economics depend on the access distribution: a uniform
workload touches every object equally (worst case for small switch
tables), while real object populations are heavily skewed — a small hot
set absorbs most accesses, which is exactly what makes partial
identity-table coverage effective (benchmark E12h's skewed variant).

All generators are deterministic given their ``random.Random``.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Iterator, List, Sequence, TypeVar

__all__ = ["uniform", "zipf", "hot_cold", "sequential_sweep", "zipf_weights",
           "pareto"]

T = TypeVar("T")


def uniform(items: Sequence[T], rng: random.Random) -> Iterator[T]:
    """Every item equally likely, forever."""
    if not items:
        raise ValueError("need at least one item")
    while True:
        yield rng.choice(items)


def zipf_weights(n: int, skew: float = 1.0) -> List[float]:
    """Zipf popularity weights for ranks 1..n: weight(r) = 1 / r^skew."""
    if n <= 0:
        raise ValueError("need a positive population")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    return [1.0 / (rank ** skew) for rank in range(1, n + 1)]


def zipf(items: Sequence[T], rng: random.Random,
         skew: float = 1.0) -> Iterator[T]:
    """Zipf-distributed accesses: ``items[0]`` is the most popular.

    ``skew=0`` degenerates to uniform; ``skew~1`` is the classic web/KV
    popularity curve.
    """
    weights = zipf_weights(len(items), skew)
    cumulative = list(itertools.accumulate(weights))
    total = cumulative[-1]
    while True:
        point = rng.random() * total
        yield items[bisect.bisect_left(cumulative, point)]


def hot_cold(items: Sequence[T], rng: random.Random,
             hot_fraction: float = 0.1,
             hot_probability: float = 0.9) -> Iterator[T]:
    """A two-tier skew: ``hot_probability`` of accesses hit the first
    ``hot_fraction`` of items."""
    if not items:
        raise ValueError("need at least one item")
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in (0, 1]")
    if not 0.0 <= hot_probability <= 1.0:
        raise ValueError("hot_probability must be in [0, 1]")
    split = max(1, int(len(items) * hot_fraction))
    hot, cold = items[:split], items[split:]
    while True:
        if not cold or rng.random() < hot_probability:
            yield rng.choice(hot)
        else:
            yield rng.choice(cold)


def pareto(items: Sequence[T], rng: random.Random,
           alpha: float = 1.16) -> Iterator[T]:
    """Truncated-Pareto accesses: ``items[0]`` is the most popular.

    The heavy-tailed alternative to :func:`zipf` — hotter head, longer
    usable tail at equal skew — sampled by inverse CDF in O(1) per draw
    with no O(n) weight precompute, so it scales to item counts where
    building the cumulative-weight table would dominate.  The same
    binning drives :class:`repro.loadgen.ParetoSampler`, which maps to
    *ranks* instead of items for keyspaces that never exist as lists.
    """
    if not items:
        raise ValueError("need at least one item")
    if alpha <= 0:
        raise ValueError("Pareto alpha must be positive")
    n = len(items)
    mass = 1.0 - (n + 1.0) ** (-alpha)
    while True:
        u = rng.random() * mass
        index = int((1.0 - u) ** (-1.0 / alpha)) - 1
        yield items[index if index < n else n - 1]


def sequential_sweep(items: Sequence[T]) -> Iterator[T]:
    """Round-robin over the population — the scan/defrag pattern that
    defeats every cache."""
    if not items:
        raise ValueError("need at least one item")
    while True:
        for item in items:
            yield item
