"""Workloads: the paper's motivating applications, runnable over both
the RPC baseline and the global object space."""

from .inference import (
    Activation,
    ModelPartition,
    SparseModel,
    build_partition_chain,
    dot_product,
    partition_flops,
    personalize,
    read_partition_object,
    register_proxied_serving,
    write_partition_object,
)
from .kvstore import ObjectKVClient, ObjectKVService, RpcKVClient, RpcKVService
from .patterns import (hot_cold, pareto, sequential_sweep, uniform, zipf,
                       zipf_weights)
from .scenario import STRATEGIES, Scenario, StrategyResult, build_scenario, run_strategy
from .traversal import (
    LIST_NODE,
    build_linked_list,
    local_traverse,
    register_proxied_traversal,
    register_traversal,
)

__all__ = [
    "ModelPartition",
    "SparseModel",
    "Activation",
    "dot_product",
    "partition_flops",
    "personalize",
    "write_partition_object",
    "read_partition_object",
    "build_partition_chain",
    "register_proxied_serving",
    "RpcKVService",
    "RpcKVClient",
    "ObjectKVService",
    "ObjectKVClient",
    "LIST_NODE",
    "build_linked_list",
    "local_traverse",
    "register_traversal",
    "register_proxied_traversal",
    "Scenario",
    "StrategyResult",
    "build_scenario",
    "run_strategy",
    "STRATEGIES",
    "uniform",
    "zipf",
    "zipf_weights",
    "pareto",
    "hot_cold",
    "sequential_sweep",
]
