"""Workloads: the paper's motivating applications, runnable over both
the RPC baseline and the global object space."""

from .inference import (
    Activation,
    ModelPartition,
    SparseModel,
    dot_product,
    partition_flops,
    personalize,
    read_partition_object,
    write_partition_object,
)
from .kvstore import ObjectKVClient, ObjectKVService, RpcKVClient, RpcKVService
from .patterns import hot_cold, sequential_sweep, uniform, zipf, zipf_weights
from .scenario import STRATEGIES, Scenario, StrategyResult, build_scenario, run_strategy
from .traversal import LIST_NODE, build_linked_list, local_traverse, register_traversal

__all__ = [
    "ModelPartition",
    "SparseModel",
    "Activation",
    "dot_product",
    "partition_flops",
    "personalize",
    "write_partition_object",
    "read_partition_object",
    "RpcKVService",
    "RpcKVClient",
    "ObjectKVService",
    "ObjectKVClient",
    "LIST_NODE",
    "build_linked_list",
    "local_traverse",
    "register_traversal",
    "Scenario",
    "StrategyResult",
    "build_scenario",
    "run_strategy",
    "STRATEGIES",
    "uniform",
    "zipf",
    "zipf_weights",
    "hot_cold",
    "sequential_sweep",
]
