"""Network-level pub/sub on data identity.

Topics *are* object IDs: subscribing to a topic installs identity
routes (multicast port sets) in every switch, and publishing sends one
identity-routed packet that the switches replicate toward all
subscribers — no broker host on the data path.  Fine-grained predicates
compiled to residuals are applied at the subscriber NIC.

This is the §3.2 prototype — "pub/sub-style communication based on
user-defined packet formats... forwarding rules installed in a
P4-defined forwarding pipeline" — rebuilt over the simulated switches.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set

from ..core.objectid import ObjectID
from ..sim import Simulator, Tracer
from ..net.packet import Packet
from ..net.topology import Network
from .compiler import RuleSet, compile_subscriptions
from .formats import PacketFormat
from .predicates import Predicate, TRUE

__all__ = ["PubSubFabric", "Subscription"]

KIND_PUBLISH = "ps.pub"

_subscription_ids = itertools.count(1)

DeliveryHandler = Callable[[Dict[str, int], bytes], None]


class Subscription:
    """One subscriber's registration for a topic."""

    def __init__(self, sid: int, host_name: str, topic: ObjectID,
                 predicate: Predicate, handler: DeliveryHandler):
        self.sid = sid
        self.host_name = host_name
        self.topic = topic
        self.predicate = predicate
        self.handler = handler
        self.delivered = 0
        self.filtered = 0


class PubSubFabric:
    """Control plane for identity pub/sub over one network."""

    def __init__(self, network: Network, fmt: PacketFormat,
                 tracer: Optional[Tracer] = None):
        self.network = network
        self.sim: Simulator = network.sim
        self.format = fmt
        self.tracer = tracer or Tracer()
        self._subs: Dict[int, Subscription] = {}
        self._by_topic: Dict[ObjectID, List[Subscription]] = {}
        self._hosts_wired: Set[str] = set()

    # -- control plane --------------------------------------------------------
    def subscribe(self, host_name: str, topic: ObjectID,
                  handler: DeliveryHandler,
                  predicate: Predicate = TRUE) -> Subscription:
        """Register interest; updates every switch's multicast group."""
        host = self.network.host(host_name)
        if host_name not in self._hosts_wired:
            host.on(KIND_PUBLISH, self._make_ingress(host_name))
            self._hosts_wired.add(host_name)
        sub = Subscription(next(_subscription_ids), host_name, topic,
                           predicate, handler)
        self._subs[sub.sid] = sub
        self._by_topic.setdefault(topic, []).append(sub)
        self._reinstall_topic(topic)
        self.tracer.count("pubsub.subscribed")
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Remove a subscription and update switch state."""
        self._subs.pop(sub.sid, None)
        remaining = [s for s in self._by_topic.get(sub.topic, []) if s.sid != sub.sid]
        if remaining:
            self._by_topic[sub.topic] = remaining
            self._reinstall_topic(sub.topic)
        else:
            self._by_topic.pop(sub.topic, None)
            for switch in self.network.switches:
                switch.remove_identity_route(sub.topic)

    def _reinstall_topic(self, topic: ObjectID) -> None:
        """Recompute each switch's multicast port set for ``topic``."""
        subscribers = {s.host_name for s in self._by_topic.get(topic, [])}
        for switch in self.network.switches:
            ports = tuple(sorted({
                self.network.port_toward(switch.name, subscriber)
                for subscriber in subscribers
            }))
            if not ports:
                switch.remove_identity_route(topic)
            elif not switch.install_identity_route(
                    topic, ports if len(ports) > 1 else ports[0]):
                self.tracer.count("pubsub.install_failed")

    # -- data plane ----------------------------------------------------------
    def publish(self, host_name: str, topic: ObjectID,
                fields: Dict[str, int], payload: bytes = b"") -> None:
        """Send one publication; switches replicate it to subscribers."""
        self.format.validate(fields)
        host = self.network.host(host_name)
        self.tracer.count("pubsub.published")
        host.send(Packet(
            kind=KIND_PUBLISH, src=host_name, dst=None, oid=topic,
            payload={"fields": dict(fields), "payload": payload},
            payload_bytes=self.format.header_bytes + len(payload),
        ))

    def _make_ingress(self, host_name: str) -> Callable[[Packet], None]:
        def _ingress(packet: Packet) -> None:
            fields = packet.payload["fields"]
            payload = packet.payload["payload"]
            for sub in self._by_topic.get(packet.oid, []):
                if sub.host_name != host_name:
                    continue
                if sub.predicate.matches(fields):
                    sub.delivered += 1
                    self.tracer.count("pubsub.delivered")
                    sub.handler(fields, payload)
                else:
                    sub.filtered += 1
                    self.tracer.count("pubsub.residual_filtered")
        return _ingress

    # -- accounting -------------------------------------------------------------
    def compiled_rules(self) -> RuleSet:
        """Compile all current predicates against the format — the
        table-usage view a real deployment would push to hardware."""
        return compile_subscriptions(
            self.format,
            [(sub.sid, sub.predicate) for sub in self._subs.values()],
        )
