"""Network-level pub/sub on data identity.

Topics *are* object IDs: subscribing to a topic installs identity
routes (multicast port sets) in every switch, and publishing sends one
identity-routed packet that the switches replicate toward all
subscribers — no broker host on the data path.  Fine-grained predicates
compiled to residuals are applied at the subscriber NIC.

This is the §3.2 prototype — "pub/sub-style communication based on
user-defined packet formats... forwarding rules installed in a
P4-defined forwarding pipeline" — rebuilt over the simulated switches.

Robustness surface (PR 8): ingress fan-out iterates a snapshot so
handlers may (un)subscribe mid-delivery; subscriptions are indexed by
``(topic, host)`` so per-packet work is O(local subs), not O(all subs
on the topic); publications with no subscribers are accounted as
``pubsub.no_route``; and an optional :class:`~repro.faults.HealthLedger`
prunes multicast ports toward suspected (crashed) subscriber hosts so
the switches stop replicating toward dead NICs — routes reinstall when
the host is cleared.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.objectid import ObjectID
from ..sim import Simulator, Tracer
from ..net.packet import Packet
from ..net.topology import Network
from .compiler import RuleSet, compile_subscriptions
from .formats import PacketFormat
from .predicates import Predicate, TRUE

__all__ = ["PubSubFabric", "Subscription"]

KIND_PUBLISH = "ps.pub"

# Wire overhead of the bus envelope (publisher id + sequence number)
# when a publication carries delivery-contract metadata.
META_BYTES = 16

_subscription_ids = itertools.count(1)

DeliveryHandler = Callable[[Dict[str, int], bytes], None]


class Subscription:
    """One subscriber's registration for a topic."""

    def __init__(self, sid: int, host_name: str, topic: ObjectID,
                 predicate: Predicate, handler: DeliveryHandler,
                 wants_meta: bool = False):
        self.sid = sid
        self.host_name = host_name
        self.topic = topic
        self.predicate = predicate
        self.handler = handler
        self.wants_meta = wants_meta
        self.delivered = 0
        self.filtered = 0


class PubSubFabric:
    """Control plane for identity pub/sub over one network."""

    def __init__(self, network: Network, fmt: PacketFormat,
                 tracer: Optional[Tracer] = None,
                 health: Optional[Any] = None):
        self.network = network
        self.sim: Simulator = network.sim
        self.format = fmt
        self.tracer = tracer or Tracer()
        self.health = health
        self._subs: Dict[int, Subscription] = {}
        self._by_topic: Dict[ObjectID, List[Subscription]] = {}
        self._by_topic_host: Dict[Tuple[ObjectID, str], List[Subscription]] = {}
        self._hosts_wired: Set[str] = set()
        self._pruned_hosts: Set[str] = set()
        if health is not None:
            health.add_listener(self._on_health_event)

    # -- control plane --------------------------------------------------------
    def subscribe(self, host_name: str, topic: ObjectID,
                  handler: DeliveryHandler,
                  predicate: Predicate = TRUE,
                  wants_meta: bool = False) -> Subscription:
        """Register interest; updates every switch's multicast group."""
        host = self.network.host(host_name)
        if host_name not in self._hosts_wired:
            host.on(KIND_PUBLISH, self._make_ingress(host_name))
            self._hosts_wired.add(host_name)
        sub = Subscription(next(_subscription_ids), host_name, topic,
                           predicate, handler, wants_meta)
        self._subs[sub.sid] = sub
        self._by_topic.setdefault(topic, []).append(sub)
        self._by_topic_host.setdefault((topic, host_name), []).append(sub)
        self._reinstall_topic(topic)
        self.tracer.count("pubsub.subscribed")
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Remove a subscription and update switch state."""
        self._subs.pop(sub.sid, None)
        local = [s for s in self._by_topic_host.get((sub.topic, sub.host_name), [])
                 if s.sid != sub.sid]
        if local:
            self._by_topic_host[(sub.topic, sub.host_name)] = local
        else:
            self._by_topic_host.pop((sub.topic, sub.host_name), None)
        remaining = [s for s in self._by_topic.get(sub.topic, []) if s.sid != sub.sid]
        if remaining:
            self._by_topic[sub.topic] = remaining
            self._reinstall_topic(sub.topic)
        else:
            self._by_topic.pop(sub.topic, None)
            for switch in self.network.switches:
                switch.remove_identity_route(sub.topic)

    def subscribers(self, topic: ObjectID) -> Tuple[Subscription, ...]:
        """Current subscriptions for ``topic`` in subscription order."""
        return tuple(self._by_topic.get(topic, ()))

    def _reinstall_topic(self, topic: ObjectID) -> None:
        """Recompute each switch's multicast port set for ``topic``."""
        subscribers = {s.host_name for s in self._by_topic.get(topic, [])
                       if s.host_name not in self._pruned_hosts}
        if not subscribers:
            # Every subscriber is suspected dead: install an explicit
            # drop entry (empty multicast group).  Removing the route
            # would fall back to flood-on-miss and replicate the
            # publication everywhere — the opposite of pruning.
            for switch in self.network.switches:
                if not switch.install_identity_route(topic, ()):
                    self.tracer.count("pubsub.install_failed")
            return
        for switch in self.network.switches:
            ports = tuple(sorted({
                self.network.port_toward(switch.name, subscriber)
                for subscriber in subscribers
            }))
            if not switch.install_identity_route(
                    topic, ports if len(ports) > 1 else ports[0]):
                self.tracer.count("pubsub.install_failed")

    # -- health-driven route pruning -----------------------------------------
    def _on_health_event(self, node: str) -> None:
        if self.health is not None and self.health.is_suspected(node):
            self.prune_host(node)
        else:
            self.restore_host(node)

    def _host_topics(self, host_name: str) -> Set[ObjectID]:
        return {s.topic for s in self._subs.values()
                if s.host_name == host_name}

    def prune_host(self, host_name: str) -> None:
        """Drop multicast ports toward a suspected-dead subscriber host.

        Its subscriptions stay registered — delivery-contract layers
        (the event bus) keep redelivering over unicast — but the
        switches stop replicating publications toward the dead NIC."""
        if host_name in self._pruned_hosts:
            return
        self._pruned_hosts.add(host_name)
        for topic in self._host_topics(host_name):
            self._reinstall_topic(topic)
            self.tracer.count("pubsub.dead_route_pruned")

    def restore_host(self, host_name: str) -> None:
        """Reinstall multicast ports toward a recovered subscriber host."""
        if host_name not in self._pruned_hosts:
            return
        self._pruned_hosts.discard(host_name)
        for topic in self._host_topics(host_name):
            self._reinstall_topic(topic)

    # -- data plane ----------------------------------------------------------
    def publish(self, host_name: str, topic: ObjectID,
                fields: Dict[str, int], payload: bytes = b"",
                meta: Optional[Dict[str, Any]] = None) -> None:
        """Send one publication; switches replicate it to subscribers.

        ``meta`` is an optional contract envelope (publisher id,
        sequence number) stamped by the event bus; it costs
        ``META_BYTES`` on the wire and is handed to subscriptions
        registered with ``wants_meta=True``."""
        self.format.validate(fields)
        host = self.network.host(host_name)
        self.tracer.count("pubsub.published")
        if not self._by_topic.get(topic):
            self.tracer.count("pubsub.no_route")
        body: Dict[str, Any] = {"fields": dict(fields), "payload": payload}
        size = self.format.header_bytes + len(payload)
        if meta is not None:
            body["meta"] = meta
            size += META_BYTES
        host.send(Packet(
            kind=KIND_PUBLISH, src=host_name, dst=None, oid=topic,
            payload=body, payload_bytes=size,
        ))

    def deliver_local(self, host_name: str, topic: ObjectID,
                      fields: Dict[str, int], payload: bytes,
                      meta: Optional[Dict[str, Any]] = None) -> None:
        """Deliver a publication to ``host_name``'s local subscriptions
        without touching the network — the redelivery path uses this on
        unicast arrival so accounting matches the multicast path."""
        self._fan_out(host_name, topic, fields, payload, meta)

    def _make_ingress(self, host_name: str) -> Callable[[Packet], None]:
        def _ingress(packet: Packet) -> None:
            self._fan_out(host_name, packet.oid,
                          packet.payload["fields"], packet.payload["payload"],
                          packet.payload.get("meta"))
        return _ingress

    def _fan_out(self, host_name: str, topic: ObjectID,
                 fields: Dict[str, int], payload: bytes,
                 meta: Optional[Dict[str, Any]]) -> None:
        subs = self._by_topic_host.get((topic, host_name))
        if not subs:
            return
        # Snapshot: handlers may subscribe/unsubscribe mid-delivery.  A
        # sub removed by an earlier handler of this packet is skipped;
        # one added mid-delivery only sees the next packet.
        for sub in tuple(subs):
            if sub.sid not in self._subs:
                continue
            if sub.predicate.matches(fields):
                sub.delivered += 1
                self.tracer.count("pubsub.delivered")
                if sub.wants_meta:
                    sub.handler(fields, payload, meta)
                else:
                    sub.handler(fields, payload)
            else:
                sub.filtered += 1
                self.tracer.count("pubsub.residual_filtered")

    # -- accounting -------------------------------------------------------------
    def compiled_rules(self) -> RuleSet:
        """Compile all current predicates against the format — the
        table-usage view a real deployment would push to hardware."""
        return compile_subscriptions(
            self.format,
            [(sub.sid, sub.predicate) for sub in self._subs.values()],
        )
