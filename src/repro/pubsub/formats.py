"""User-defined packet formats.

Packet Subscriptions parse *user-defined* headers in the switch; the
format declaration here plays the role of the P4 parser: named integer
fields with explicit bit widths.  The compiler uses the widths for
switch-table entry accounting, and publications are validated against
the format before they hit the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["FormatField", "PacketFormat", "FormatError"]


class FormatError(Exception):
    """Raised for malformed formats or out-of-range field values."""


@dataclass(frozen=True)
class FormatField:
    """One header field: a name and a width in bits."""

    name: str
    bits: int

    def __post_init__(self) -> None:
        if not self.name:
            raise FormatError("field needs a name")
        if not 1 <= self.bits <= 128:
            raise FormatError(f"field {self.name!r}: width must be 1..128 bits")

    @property
    def max_value(self) -> int:
        """Largest value the field width can hold."""
        return (1 << self.bits) - 1


class PacketFormat:
    """An ordered set of fields — the user-defined header layout."""

    def __init__(self, name: str, fields: List[FormatField]):
        if not fields:
            raise FormatError(f"format {name!r} has no fields")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise FormatError(f"format {name!r} has duplicate fields")
        self.name = name
        self.fields = list(fields)
        self._by_name = {f.name: f for f in fields}

    def field(self, name: str) -> FormatField:
        """Look up a field by name; raises if unknown."""
        field = self._by_name.get(name)
        if field is None:
            raise FormatError(f"format {self.name!r} has no field {name!r}")
        return field

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def header_bits(self) -> int:
        """Total header width in bits."""
        return sum(f.bits for f in self.fields)

    @property
    def header_bytes(self) -> int:
        """Total header width in whole bytes."""
        return (self.header_bits + 7) // 8

    def key_bits(self, field_names) -> int:
        """Total key width of a rule matching on ``field_names``."""
        return sum(self.field(name).bits for name in field_names)

    def validate(self, values: Dict[str, int]) -> None:
        """Check a publication's field values against the format."""
        for name, value in values.items():
            field = self.field(name)
            if not isinstance(value, int) or not 0 <= value <= field.max_value:
                raise FormatError(
                    f"field {name!r}: value {value!r} does not fit {field.bits} bits"
                )

    def __repr__(self) -> str:
        return f"<PacketFormat {self.name} {self.header_bits} bits>"
