"""Compiling subscriptions into forwarding rules.

The Packet Subscriptions compiler splits each subscription into:

* **exact rules** — conjunctions of equality atoms become exact-match
  table entries (ranges narrower than ``max_range_expansion`` are
  expanded into one entry per value, the classic TCAM-avoidance trick);
* **residual predicates** — anything that cannot be expressed as a
  bounded set of exact entries stays at the subscriber host, with the
  switch falling back to a coarser match.

The compiler accounts SRAM usage through :class:`~repro.net.pipeline.SramModel`,
so the §3.2 capacity numbers bound how many subscriptions fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..net.pipeline import SramModel, TOFINO_SRAM
from .formats import PacketFormat
from .predicates import Eq, InRange, Predicate, PredicateError

__all__ = ["CompiledRule", "RuleSet", "compile_subscriptions", "CompileError"]


class CompileError(Exception):
    """Raised when a subscription cannot be compiled within limits."""


@dataclass(frozen=True)
class CompiledRule:
    """One exact-match entry: field tuple -> value tuple -> subscriber."""

    fields: Tuple[str, ...]
    values: Tuple[Any, ...]
    subscription_id: int

    def matches(self, publication: Dict[str, Any]) -> bool:
        """Whether this matches the given field values."""
        return all(publication.get(f) == v for f, v in zip(self.fields, self.values))


@dataclass
class RuleSet:
    """The compiler's output for a batch of subscriptions."""

    format: PacketFormat
    rules: List[CompiledRule] = field(default_factory=list)
    residuals: List[Tuple[int, Predicate]] = field(default_factory=list)

    def classify(self, publication: Dict[str, Any]) -> Set[int]:
        """Subscription ids this publication should reach."""
        hits = {rule.subscription_id for rule in self.rules if rule.matches(publication)}
        hits |= {sid for sid, predicate in self.residuals if predicate.matches(publication)}
        return hits

    def entries_used(self) -> int:
        """Number of exact-match entries compiled."""
        return len(self.rules)

    def sram_words_used(self, sram: SramModel = TOFINO_SRAM) -> int:
        """SRAM words these rules occupy under the capacity model."""
        total = 0
        for rule in self.rules:
            key_bits = self.format.key_bits(rule.fields)
            total += sram.words_per_entry(key_bits)
        return total

    def fits(self, sram: SramModel = TOFINO_SRAM) -> bool:
        """Whether the compiled rules fit the SRAM budget."""
        return self.sram_words_used(sram) <= sram.total_words


def _term_to_rules(
    fmt: PacketFormat,
    term: List[Predicate],
    subscription_id: int,
    max_range_expansion: int,
) -> Optional[List[CompiledRule]]:
    """Turn one DNF conjunction into exact rules, or None if it must
    stay a residual."""
    exact: Dict[str, Any] = {}
    ranges: List[InRange] = []
    for atom in term:
        if isinstance(atom, Eq):
            if atom.field in exact and exact[atom.field] != atom.value:
                return []  # contradictory conjunction: matches nothing
            if atom.field not in fmt:
                return None  # field invisible to the switch parser
            exact[atom.field] = atom.value
        elif isinstance(atom, InRange):
            if atom.field not in fmt:
                return None
            ranges.append(atom)
        else:  # pragma: no cover - And/Or never appear inside DNF terms
            raise CompileError(f"non-atomic predicate in DNF term: {atom!r}")
    # Expand narrow ranges into per-value exact entries.
    combos: List[Dict[str, Any]] = [dict(exact)]
    expansion = 1
    for r in ranges:
        expansion *= r.width
        if expansion > max_range_expansion:
            return None  # too wide: keep the whole term at the host
        next_combos = []
        for combo in combos:
            for value in range(r.lo, r.hi + 1):
                if r.field in combo and combo[r.field] != value:
                    continue
                candidate = dict(combo)
                candidate[r.field] = value
                next_combos.append(candidate)
        combos = next_combos
    rules = []
    for combo in combos:
        names = tuple(sorted(combo))
        rules.append(CompiledRule(
            fields=names,
            values=tuple(combo[name] for name in names),
            subscription_id=subscription_id,
        ))
    return rules


def compile_subscriptions(
    fmt: PacketFormat,
    subscriptions: List[Tuple[int, Predicate]],
    max_range_expansion: int = 64,
    sram: SramModel = TOFINO_SRAM,
) -> RuleSet:
    """Compile ``(subscription id, predicate)`` pairs against ``fmt``.

    Raises :class:`CompileError` if the compiled rules exceed the SRAM
    budget — the capacity wall of §3.2.
    """
    ruleset = RuleSet(format=fmt)
    for sid, predicate in subscriptions:
        try:
            terms = predicate.dnf()
        except PredicateError as exc:
            raise CompileError(f"subscription {sid}: {exc}") from exc
        for term in terms:
            if not term:
                # TRUE term: matches every publication; purely host-side.
                ruleset.residuals.append((sid, predicate))
                continue
            rules = _term_to_rules(fmt, term, sid, max_range_expansion)
            if rules is None:
                ruleset.residuals.append((sid, predicate))
            else:
                ruleset.rules.extend(rules)
    if not ruleset.fits(sram):
        raise CompileError(
            f"compiled rules need {ruleset.sram_words_used(sram)} SRAM words, "
            f"budget is {sram.total_words}"
        )
    return ruleset
