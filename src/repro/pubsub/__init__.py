"""Packet subscriptions: predicates over user-defined packet formats,
compiled to switch rules; identity-routed pub/sub over the fabric."""

from .compiler import CompiledRule, CompileError, RuleSet, compile_subscriptions
from .fabric import PubSubFabric, Subscription
from .formats import FormatError, FormatField, PacketFormat
from .predicates import TRUE, And, Eq, InRange, Or, Predicate, PredicateError

__all__ = [
    "Predicate",
    "Eq",
    "InRange",
    "And",
    "Or",
    "TRUE",
    "PredicateError",
    "PacketFormat",
    "FormatField",
    "FormatError",
    "compile_subscriptions",
    "RuleSet",
    "CompiledRule",
    "CompileError",
    "PubSubFabric",
    "Subscription",
]
