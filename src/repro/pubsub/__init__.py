"""Packet subscriptions: predicates over user-defined packet formats,
compiled to switch rules; identity-routed pub/sub over the fabric; an
event bus with delivery contracts and credit-based backpressure."""

from .bus import (
    AT_LEAST_ONCE,
    AT_MOST_ONCE,
    BLOCK,
    BusError,
    BusSubscriber,
    DROP_NEWEST,
    DROP_OLDEST,
    EventBus,
)
from .compiler import CompiledRule, CompileError, RuleSet, compile_subscriptions
from .fabric import PubSubFabric, Subscription
from .formats import FormatError, FormatField, PacketFormat
from .predicates import TRUE, And, Eq, InRange, Or, Predicate, PredicateError

__all__ = [
    "EventBus",
    "BusSubscriber",
    "BusError",
    "AT_MOST_ONCE",
    "AT_LEAST_ONCE",
    "DROP_OLDEST",
    "DROP_NEWEST",
    "BLOCK",
    "Predicate",
    "Eq",
    "InRange",
    "And",
    "Or",
    "TRUE",
    "PredicateError",
    "PacketFormat",
    "FormatField",
    "FormatError",
    "compile_subscriptions",
    "RuleSet",
    "CompiledRule",
    "CompileError",
    "PubSubFabric",
    "Subscription",
]
