"""Event bus: delivery contracts and backpressure over identity pub/sub.

The fabric underneath (:mod:`repro.pubsub.fabric`) is fire-and-forget:
one identity-routed packet, replicated by the switches, dropped silently
at any dead NIC or overloaded consumer.  The bus layers the two
properties a production event plane needs on top of it, without putting
a broker host on the data path:

* **Delivery contracts.**  ``AT_MOST_ONCE`` names today's behavior (and
  accounts it); ``AT_LEAST_ONCE`` adds per-event sequence numbers
  stamped into the publication's meta envelope, per-subscriber
  cumulative acks, deterministic redelivery timers with a bounded
  per-subscriber attempt budget, and consumer-side dedup — so events
  published while a subscriber host is crashed or partitioned are
  delivered (exactly once to the handler) after it recovers.

* **Credit-based backpressure.**  Subscribers grant credits as they
  *consume* (not merely receive) events; publishers pace against the
  minimum outstanding credit across live subscribers, buffering at most
  ``buffer_cap`` events with an explicit overflow policy —
  ``drop_oldest`` / ``drop_newest`` (count ``bus.shed``) or ``block``
  (the producer gets a Future to wait on).  A slow consumer therefore
  bounds memory instead of growing queues silently.

Redelivery rides unicast (not multicast), so it keeps working after the
fabric prunes a suspected subscriber's multicast ports; repeated
ack-less redelivery rounds are what *feed* the
:class:`~repro.faults.HealthLedger` suspicion that triggers pruning,
and the first grant from a recovered host clears it and restores its
routes.

One bus instance per network: it claims the ``bus.grant`` /
``bus.redeliver`` packet kinds on every host it touches.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from ..core.objectid import ObjectID
from ..net.packet import Packet
from ..sim import Future, Simulator, Timeout, Tracer
from .fabric import META_BYTES, PubSubFabric
from .predicates import Predicate, TRUE

__all__ = [
    "AT_LEAST_ONCE",
    "AT_MOST_ONCE",
    "BLOCK",
    "BusError",
    "BusSubscriber",
    "DROP_NEWEST",
    "DROP_OLDEST",
    "EventBus",
]

AT_MOST_ONCE = "at_most_once"
AT_LEAST_ONCE = "at_least_once"
CONTRACTS = (AT_MOST_ONCE, AT_LEAST_ONCE)

DROP_OLDEST = "drop_oldest"
DROP_NEWEST = "drop_newest"
BLOCK = "block"
OVERFLOW_POLICIES = (DROP_OLDEST, DROP_NEWEST, BLOCK)

KIND_GRANT = "bus.grant"
KIND_REDELIVER = "bus.redeliver"

# Wire size of an ack/credit grant (sid + cumulative seq + credit count).
GRANT_BYTES = 24

_bus_sub_ids = itertools.count(1)


class BusError(Exception):
    """Misuse of the event bus (bad contract, policy, or window)."""


class BusSubscriber:
    """One consumer endpoint: a bounded inbox drained at ``service_us``
    per event, granting credit back to publishers as events are consumed.

    ``credits`` is the consumer's receive window: the publisher never has
    more than that many unconsumed events outstanding toward this
    subscriber.  Under ``AT_LEAST_ONCE`` the subscriber also keeps
    per-publisher cumulative-ack and dedup state so redelivered copies
    are suppressed before the handler sees them.
    """

    def __init__(self, bus: "EventBus", host_name: str, topic: ObjectID,
                 handler: Callable[[Dict[str, int], bytes], None],
                 contract: str, credits: int, service_us: float,
                 predicate: Predicate):
        self.bus = bus
        self.sid = next(_bus_sub_ids)
        self.host_name = host_name
        self.topic = topic
        self.handler = handler
        self.contract = contract
        self.credit_window = credits
        self.service_us = service_us
        self.predicate = predicate
        self.inbox: Deque[Tuple[str, Dict[str, int], bytes]] = deque()
        self.delivered = 0
        self.deduped = 0
        self.filtered = 0
        self._pumping = False
        # Per publisher host: next contiguous sequence number expected,
        # plus the sparse set of sequence numbers seen ahead of it.
        self._next_cum: Dict[str, int] = {}
        self._ahead: Dict[str, Set[int]] = {}
        self._fabric_sub = None  # set by EventBus.subscribe

    # -- arrival (multicast ingress or unicast redelivery) -----------------
    def _on_event(self, publisher: Optional[str], seq: Optional[int],
                  fields: Dict[str, int], payload: bytes) -> None:
        if publisher is None or seq is None:
            # A bare fabric publication (no bus envelope): hand it
            # through without contract bookkeeping.
            self.handler(fields, payload)
            return
        if self.contract == AT_LEAST_ONCE:
            nxt = self._next_cum.setdefault(publisher, seq)
            ahead = self._ahead.setdefault(publisher, set())
            if seq < nxt or seq in ahead:
                self.deduped += 1
                self.bus.tracer.count("bus.deduped")
                self._grant(publisher, credits=0)  # re-ack, no credit
                return
            ahead.add(seq)
            while nxt in ahead:
                ahead.discard(nxt)
                nxt += 1
            self._next_cum[publisher] = nxt
        if not self.predicate.matches(fields):
            # Filtered events are still consumed for contract purposes:
            # ack them and return their credit, or redelivery never ends.
            self.filtered += 1
            self._grant(publisher, credits=1)
            return
        self.inbox.append((publisher, fields, payload))
        if not self._pumping:
            self._pumping = True
            self.bus.sim.spawn(self._pump(), name=f"bus-pump-{self.sid}")

    def _pump(self):
        while self.inbox:
            publisher, fields, payload = self.inbox.popleft()
            if self.service_us > 0:
                yield Timeout(self.service_us)
            self.handler(fields, payload)
            self.delivered += 1
            self.bus.tracer.count("bus.delivered")
            self._grant(publisher, credits=1)
        self._pumping = False

    def _grant(self, publisher: str, credits: int) -> None:
        ack = None
        if self.contract == AT_LEAST_ONCE and publisher in self._next_cum:
            ack = self._next_cum[publisher] - 1
        self.bus._send_grant(self, publisher, credits, ack)


class _Unacked:
    """Publisher-side record of one event awaiting at-least-once acks."""

    __slots__ = ("event", "pending", "attempts", "last_tx_us")

    def __init__(self, event: "_Event", pending: Set[int], now: float):
        self.event = event
        self.pending = pending          # sids still owing an ack
        self.attempts: Dict[int, int] = {}
        self.last_tx_us = now


class _Event:
    __slots__ = ("seq", "fields", "payload")

    def __init__(self, seq: int, fields: Dict[str, int], payload: bytes):
        self.seq = seq
        self.fields = fields
        self.payload = payload


class _PubState:
    """Per (publisher host, topic) flow state."""

    __slots__ = ("host_name", "topic", "seq", "buffer", "waiting",
                 "credits", "unacked", "timer_armed")

    def __init__(self, host_name: str, topic: ObjectID):
        self.host_name = host_name
        self.topic = topic
        self.seq = 0
        self.buffer: Deque[_Event] = deque()
        self.waiting: Deque[Tuple[_Event, Future]] = deque()
        self.credits: Dict[int, int] = {}   # sid -> outstanding credit
        self.unacked: Dict[int, _Unacked] = {}
        self.timer_armed = False


class EventBus:
    """Delivery contracts + flow control over one :class:`PubSubFabric`."""

    def __init__(self, fabric: PubSubFabric,
                 health: Optional[Any] = None,
                 tracer: Optional[Tracer] = None,
                 buffer_cap: int = 64,
                 overflow: str = DROP_OLDEST,
                 default_credits: int = 8,
                 redelivery_us: float = 5_000.0,
                 redelivery_budget: int = 5,
                 suspect_after: int = 3):
        if overflow not in OVERFLOW_POLICIES:
            raise BusError(f"unknown overflow policy {overflow!r}")
        if buffer_cap <= 0 or default_credits <= 0:
            raise BusError("buffer_cap and default_credits must be positive")
        if redelivery_budget <= 0 or redelivery_us <= 0:
            raise BusError("redelivery budget and interval must be positive")
        self.fabric = fabric
        self.network = fabric.network
        self.sim: Simulator = fabric.sim
        self.health = health if health is not None else fabric.health
        self.tracer = tracer or Tracer()
        self.buffer_cap = buffer_cap
        self.overflow = overflow
        self.default_credits = default_credits
        self.redelivery_us = redelivery_us
        self.redelivery_budget = redelivery_budget
        self.suspect_after = suspect_after
        self._pub_states: Dict[Tuple[str, ObjectID], _PubState] = {}
        self._subs: Dict[int, BusSubscriber] = {}
        self._subs_by_topic: Dict[ObjectID, List[BusSubscriber]] = {}
        self._grant_wired: Set[str] = set()
        self._redeliver_wired: Set[str] = set()

    # -- subscriber side ---------------------------------------------------
    def subscribe(self, host_name: str, topic: ObjectID,
                  handler: Callable[[Dict[str, int], bytes], None],
                  contract: str = AT_MOST_ONCE,
                  credits: Optional[int] = None,
                  service_us: float = 0.0,
                  predicate: Predicate = TRUE) -> BusSubscriber:
        """Register a consumer with a delivery contract and a credit window."""
        if contract not in CONTRACTS:
            raise BusError(f"unknown delivery contract {contract!r}")
        window = self.default_credits if credits is None else credits
        if window <= 0:
            raise BusError("credit window must be positive")
        sub = BusSubscriber(self, host_name, topic, handler, contract,
                            window, service_us, predicate)
        # Bus subscriptions take the raw stream (predicate applied after
        # dedup so filtered events still ack) plus the contract envelope.
        sub._fabric_sub = self.fabric.subscribe(
            host_name, topic, self._make_arrival(sub), wants_meta=True)
        self._subs[sub.sid] = sub
        self._subs_by_topic.setdefault(topic, []).append(sub)
        if host_name not in self._redeliver_wired:
            self.network.host(host_name).on(
                KIND_REDELIVER, self._make_redeliver_ingress(host_name))
            self._redeliver_wired.add(host_name)
        for st in self._pub_states.values():
            if st.topic == topic:
                st.credits.setdefault(sub.sid, window)
        return sub

    def unsubscribe(self, sub: BusSubscriber) -> None:
        """Withdraw a consumer; the publisher stops owing it anything."""
        if self._subs.pop(sub.sid, None) is None:
            return
        remaining = [s for s in self._subs_by_topic.get(sub.topic, [])
                     if s.sid != sub.sid]
        if remaining:
            self._subs_by_topic[sub.topic] = remaining
        else:
            self._subs_by_topic.pop(sub.topic, None)
        self.fabric.unsubscribe(sub._fabric_sub)
        for st in self._pub_states.values():
            if st.topic != sub.topic:
                continue
            st.credits.pop(sub.sid, None)
            retired = []
            for seq, rec in st.unacked.items():
                rec.pending.discard(sub.sid)
                if not rec.pending:
                    retired.append(seq)
            for seq in retired:
                del st.unacked[seq]
                self.tracer.count("bus.acked")
            self._drain(st)

    def _make_arrival(self, sub: BusSubscriber):
        def _arrival(fields: Dict[str, int], payload: bytes,
                     meta: Optional[Dict[str, Any]]) -> None:
            if meta is None:
                sub._on_event(None, None, fields, payload)
            else:
                sub._on_event(meta["pub"], meta["seq"], fields, payload)
        return _arrival

    def _make_redeliver_ingress(self, host_name: str):
        def _ingress(packet: Packet) -> None:
            p = packet.payload
            sub = self._subs.get(p["sid"])
            if sub is None or sub.host_name != host_name:
                return
            sub._on_event(p["pub"], p["seq"], p["fields"], p["payload"])
        return _ingress

    def _send_grant(self, sub: BusSubscriber, publisher: str,
                    credits: int, ack: Optional[int]) -> None:
        if sub.host_name == publisher:
            self._apply_grant(publisher, sub.topic, sub.sid, credits, ack,
                              from_host=sub.host_name)
            return
        self.network.host(sub.host_name).send(Packet(
            kind=KIND_GRANT, src=sub.host_name, dst=publisher,
            payload={"topic": sub.topic, "sid": sub.sid,
                     "credits": credits, "ack": ack},
            payload_bytes=GRANT_BYTES,
        ))

    # -- publisher side ----------------------------------------------------
    def publish(self, host_name: str, topic: ObjectID,
                fields: Dict[str, int], payload: bytes = b"") -> Optional[Future]:
        """Publish one event, pacing against consumer credit.

        Returns ``None`` when the event was sent or buffered (or shed,
        under a drop policy); under ``block`` overflow a full buffer
        returns a :class:`Future` the producer must yield on before the
        event is accepted.
        """
        st = self._pub_state(host_name, topic)
        self.tracer.count("bus.published")
        st.seq += 1
        ev = _Event(st.seq, dict(fields), payload)
        if not st.buffer and self._min_credit(st, topic) > 0:
            self._transmit(st, ev)
            return None
        # Deferred for lack of consumer credit (or behind earlier
        # deferred events): publisher-side buffering with a hard cap.
        self.tracer.count("bus.credit_stall")
        if len(st.buffer) < self.buffer_cap:
            st.buffer.append(ev)
            return None
        if self.overflow == DROP_NEWEST:
            self.tracer.count("bus.shed")
            return None
        if self.overflow == DROP_OLDEST:
            st.buffer.popleft()
            self.tracer.count("bus.shed")
            st.buffer.append(ev)
            return None
        future = Future(self.sim, name=f"bus-block-{host_name}-{st.seq}")
        st.waiting.append((ev, future))
        return future

    def _pub_state(self, host_name: str, topic: ObjectID) -> _PubState:
        key = (host_name, topic)
        st = self._pub_states.get(key)
        if st is None:
            st = _PubState(host_name, topic)
            for sub in self._subs_by_topic.get(topic, []):
                st.credits[sub.sid] = sub.credit_window
            self._pub_states[key] = st
            if host_name not in self._grant_wired:
                self.network.host(host_name).on(
                    KIND_GRANT, self._make_grant_ingress(host_name))
                self._grant_wired.add(host_name)
        return st

    def _live_subs(self, topic: ObjectID) -> List[BusSubscriber]:
        subs = self._subs_by_topic.get(topic, [])
        if self.health is None:
            return list(subs)
        return [s for s in subs if not self.health.is_suspected(s.host_name)]

    def _min_credit(self, st: _PubState, topic: ObjectID) -> float:
        live = self._live_subs(topic)
        if not live:
            return float("inf")
        return min(st.credits.setdefault(s.sid, s.credit_window)
                   for s in live)

    def _transmit(self, st: _PubState, ev: _Event) -> None:
        subs = self._subs_by_topic.get(st.topic, [])
        alo = {s.sid for s in subs if s.contract == AT_LEAST_ONCE}
        if alo:
            st.unacked[ev.seq] = _Unacked(ev, alo, self.sim.now)
            self._arm_timer(st)
        for sub in self._live_subs(st.topic):
            st.credits[sub.sid] = st.credits.get(sub.sid, sub.credit_window) - 1
        self.fabric.publish(st.host_name, st.topic, ev.fields, ev.payload,
                            meta={"pub": st.host_name, "seq": ev.seq})

    def _make_grant_ingress(self, host_name: str):
        def _ingress(packet: Packet) -> None:
            p = packet.payload
            self._apply_grant(host_name, p["topic"], p["sid"],
                              p["credits"], p["ack"], from_host=packet.src)
        return _ingress

    def _apply_grant(self, pub_host: str, topic: ObjectID, sid: int,
                     credits: int, ack: Optional[int], from_host: str) -> None:
        st = self._pub_states.get((pub_host, topic))
        if st is None:
            return
        # Any grant proves the consumer host is alive again.
        self.fabric.restore_host(from_host)
        if self.health is not None and self.health.is_suspected(from_host):
            self.health.clear(from_host)
        if ack is not None:
            retired = [seq for seq in st.unacked if seq <= ack]
            for seq in sorted(retired):
                rec = st.unacked[seq]
                rec.pending.discard(sid)
                if not rec.pending:
                    del st.unacked[seq]
                    self.tracer.count("bus.acked")
        if credits and sid in self._subs:
            st.credits[sid] = st.credits.get(sid, 0) + credits
        self._drain(st)

    def _drain(self, st: _PubState) -> None:
        while (st.buffer or st.waiting) and self._min_credit(st, st.topic) > 0:
            if not st.buffer:
                ev, future = st.waiting.popleft()
                future.set_result(None)
                self._transmit(st, ev)
                continue
            self._transmit(st, st.buffer.popleft())
        # Blocked producers slide into freed buffer space.
        while st.waiting and len(st.buffer) < self.buffer_cap:
            ev, future = st.waiting.popleft()
            st.buffer.append(ev)
            future.set_result(None)

    # -- redelivery --------------------------------------------------------
    def _arm_timer(self, st: _PubState) -> None:
        if st.timer_armed or not st.unacked:
            return
        st.timer_armed = True
        self.sim.schedule(self.redelivery_us, self._tick, st)

    def _tick(self, st: _PubState) -> None:
        st.timer_armed = False
        if not st.unacked:
            return
        now = self.sim.now
        retired = []
        for seq in sorted(st.unacked):
            rec = st.unacked[seq]
            if now - rec.last_tx_us + 1e-9 < self.redelivery_us:
                continue
            for sid in sorted(rec.pending):
                sub = self._subs.get(sid)
                if sub is None:
                    rec.pending.discard(sid)
                    continue
                attempts = rec.attempts.get(sid, 0)
                if attempts >= self.redelivery_budget:
                    # Budget exhausted: give up on this consumer for
                    # this event — bounded work, accounted as shed.
                    rec.pending.discard(sid)
                    self.tracer.count("bus.shed")
                    continue
                rec.attempts[sid] = attempts + 1
                if (self.health is not None
                        and attempts + 1 >= self.suspect_after
                        and not self.health.is_suspected(sub.host_name)):
                    self.health.suspect(sub.host_name)
                self._send_redelivery(st, rec.event, sub)
            rec.last_tx_us = now
            if not rec.pending:
                retired.append(seq)
        for seq in retired:
            del st.unacked[seq]
        if st.unacked:
            st.timer_armed = True
            self.sim.schedule(self.redelivery_us, self._tick, st)

    def _send_redelivery(self, st: _PubState, ev: _Event,
                         sub: BusSubscriber) -> None:
        self.tracer.count("bus.redelivered")
        if sub.host_name == st.host_name:
            sub._on_event(st.host_name, ev.seq, ev.fields, ev.payload)
            return
        self.network.host(st.host_name).send(Packet(
            kind=KIND_REDELIVER, src=st.host_name, dst=sub.host_name,
            payload={"topic": st.topic, "sid": sub.sid, "pub": st.host_name,
                     "seq": ev.seq, "fields": ev.fields, "payload": ev.payload},
            payload_bytes=(self.fabric.format.header_bytes
                           + len(ev.payload) + META_BYTES),
        ))

    # -- accounting --------------------------------------------------------
    def outstanding(self, host_name: str, topic: ObjectID) -> int:
        """Unacked events a publisher still owes at-least-once consumers."""
        st = self._pub_states.get((host_name, topic))
        return len(st.unacked) if st is not None else 0

    def buffered(self, host_name: str, topic: ObjectID) -> int:
        """Events waiting in the publisher-side pacing buffer."""
        st = self._pub_states.get((host_name, topic))
        return len(st.buffer) if st is not None else 0
