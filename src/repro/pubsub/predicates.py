"""Subscription predicates over user-defined packet fields.

Packet Subscriptions [Jepsen et al., CoNEXT '20] let receivers express
interest as predicates over fields of user-defined packet formats; a
compiler turns them into switch forwarding rules.  This module is the
predicate language: equality and range atoms over named fields, composed
with conjunction and disjunction, normalized to DNF for rule generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List

__all__ = ["Predicate", "Eq", "InRange", "And", "Or", "TRUE", "PredicateError"]


class PredicateError(Exception):
    """Raised for malformed predicates (unknown combinators, bad ranges)."""


class Predicate:
    """Base class: a boolean function over a field-value mapping."""

    def matches(self, values: Dict[str, Any]) -> bool:
        """Whether this matches the given field values."""
        raise NotImplementedError

    def fields(self) -> FrozenSet[str]:
        """The field names this predicate inspects."""
        raise NotImplementedError

    def dnf(self) -> List[List["Predicate"]]:
        """Disjunctive normal form: a list of conjunctions of atoms."""
        raise NotImplementedError

    # Operator sugar: ``p & q``, ``p | q``.
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)


@dataclass(frozen=True)
class Eq(Predicate):
    """field == value (an exact-match atom: one switch-table entry)."""

    field: str
    value: Any

    def matches(self, values: Dict[str, Any]) -> bool:
        """Whether this matches the given field values."""
        return values.get(self.field) == self.value

    def fields(self) -> FrozenSet[str]:
        """Field names this predicate inspects."""
        return frozenset({self.field})

    def dnf(self) -> List[List[Predicate]]:
        """Disjunctive normal form as a list of atom conjunctions."""
        return [[self]]

    def __repr__(self) -> str:
        return f"({self.field} == {self.value!r})"


@dataclass(frozen=True)
class InRange(Predicate):
    """lo <= field <= hi (a range atom: host-side residual, or expanded
    into multiple exact entries by the compiler when narrow enough)."""

    field: str
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise PredicateError(f"empty range [{self.lo}, {self.hi}]")

    def matches(self, values: Dict[str, Any]) -> bool:
        """Whether this matches the given field values."""
        value = values.get(self.field)
        return isinstance(value, int) and self.lo <= value <= self.hi

    def fields(self) -> FrozenSet[str]:
        """Field names this predicate inspects."""
        return frozenset({self.field})

    def dnf(self) -> List[List[Predicate]]:
        """Disjunctive normal form as a list of atom conjunctions."""
        return [[self]]

    @property
    def width(self) -> int:
        """Number of values the range covers."""
        return self.hi - self.lo + 1

    def __repr__(self) -> str:
        return f"({self.lo} <= {self.field} <= {self.hi})"


class And(Predicate):
    """Conjunction of sub-predicates."""

    def __init__(self, *children: Predicate):
        if not children:
            raise PredicateError("And needs at least one child")
        self.children = tuple(children)

    def matches(self, values: Dict[str, Any]) -> bool:
        """Whether this matches the given field values."""
        return all(child.matches(values) for child in self.children)

    def fields(self) -> FrozenSet[str]:
        """Field names this predicate inspects."""
        return frozenset().union(*(child.fields() for child in self.children))

    def dnf(self) -> List[List[Predicate]]:
        # Cartesian product of the children's DNF terms.
        """Disjunctive normal form as a list of atom conjunctions."""
        terms: List[List[Predicate]] = [[]]
        for child in self.children:
            expanded = []
            for term in terms:
                for child_term in child.dnf():
                    expanded.append(term + child_term)
            terms = expanded
        return terms

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.children)) + ")"


class Or(Predicate):
    """Disjunction of sub-predicates."""

    def __init__(self, *children: Predicate):
        if not children:
            raise PredicateError("Or needs at least one child")
        self.children = tuple(children)

    def matches(self, values: Dict[str, Any]) -> bool:
        """Whether this matches the given field values."""
        return any(child.matches(values) for child in self.children)

    def fields(self) -> FrozenSet[str]:
        """Field names this predicate inspects."""
        return frozenset().union(*(child.fields() for child in self.children))

    def dnf(self) -> List[List[Predicate]]:
        """Disjunctive normal form as a list of atom conjunctions."""
        terms: List[List[Predicate]] = []
        for child in self.children:
            terms.extend(child.dnf())
        return terms

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.children)) + ")"


class _True(Predicate):
    """Matches everything (subscribe to the whole topic)."""

    def matches(self, values: Dict[str, Any]) -> bool:
        """Whether this matches the given field values."""
        return True

    def fields(self) -> FrozenSet[str]:
        """Field names this predicate inspects."""
        return frozenset()

    def dnf(self) -> List[List[Predicate]]:
        """Disjunctive normal form as a list of atom conjunctions."""
        return [[]]

    def __repr__(self) -> str:
        return "TRUE"


TRUE = _True()
