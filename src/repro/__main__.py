"""``python -m repro`` — a 30-second self-check.

Builds a tiny cluster, runs one rendezvous invocation, one discovery
sweep point per scheme, and prints what happened.  A quick way to verify
an installation before running the full test/benchmark suites.
"""

from __future__ import annotations


def main() -> None:
    """Run the self-check and print a short report."""
    import repro
    from repro import FunctionRegistry, GlobalRef, GlobalSpaceRuntime, Simulator, build_star
    from repro.discovery import SCHEME_CONTROLLER, SCHEME_E2E, run_fig2_point

    print(f"repro {repro.__version__} self-check")

    sim = Simulator(seed=1)
    net = build_star(sim, 3, prefix="n")
    registry = FunctionRegistry()

    @registry.register("selfcheck")
    def selfcheck(ctx, args):
        data = yield ctx.read(args["blob"], 0, 5)
        return data.decode()

    runtime = GlobalSpaceRuntime(net, registry)
    for name in ("n0", "n1", "n2"):
        runtime.add_node(name)
    blob = runtime.create_object("n2", size=1 << 20)
    blob.write(0, b"hello")
    _, code_ref = runtime.create_code("n0", "selfcheck", text_size=256)

    def run():
        result = yield sim.spawn(runtime.invoke(
            "n0", code_ref, data_refs={"blob": GlobalRef(blob.oid, 0, "read")}))
        return result

    result = sim.run_process(run())
    assert result.value == "hello"
    print(f"  rendezvous invoke: ok (ran on {result.executed_at}, "
          f"{result.latency_us:.1f}us simulated)")

    for scheme in (SCHEME_CONTROLLER, SCHEME_E2E):
        point = run_fig2_point(scheme, 50, n_accesses=30)
        assert point.failures == 0
        print(f"  discovery [{scheme:10s}]: ok "
              f"(mean {point.mean_rtt_us:.1f}us, "
              f"{point.broadcasts_per_100:.0f} broadcasts/100)")

    print("all good — try `pytest tests/` and "
          "`pytest benchmarks/ --benchmark-only` next")


if __name__ == "__main__":
    main()
