"""``python -m repro`` — self-check, cluster report, trace export.

Subcommands (``selfcheck`` is the default when none is given):

* ``selfcheck [--seed N]`` — builds a tiny cluster, runs one rendezvous
  invocation and one discovery sweep point per scheme, and prints what
  happened.  Exits non-zero if any check fails.
* ``report [--seed N] [--jsonl]`` — runs the same workload and prints
  the cluster-wide counter/series snapshot from the metrics registry.
* ``trace {quickstart,pipeline} [--seed N] [--out FILE]`` — runs an
  example workload and writes its invocation span trees as a Chrome
  ``trace_event`` file (open in chrome://tracing or Perfetto).
* ``bench [--quick] [--filter PAT] [--json FILE] [--wall] [--list]`` —
  runs the deterministic benchmark catalogue and optionally writes a
  schema-versioned ``BENCH.json``; ``bench compare BASELINE CANDIDATE``
  diffs two result files and exits non-zero past the regression
  threshold.  See BENCHMARKS.md.

See OBSERVABILITY.md for what the emitted keys and spans mean.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

_EXAMPLES = ("quickstart", "pipeline")


def _build_cluster(seed: int):
    """The shared 3-host star cluster with a blob on n2 and code on n0."""
    from repro import (FunctionRegistry, GlobalRef, GlobalSpaceRuntime,
                       Simulator, build_star)

    sim = Simulator(seed=seed)
    net = build_star(sim, 3, prefix="n")
    registry = FunctionRegistry()

    @registry.register("selfcheck")
    def selfcheck(ctx, args):
        data = yield ctx.read(args["blob"], 0, 5)
        return data.decode()

    @registry.register("produce")
    def produce(ctx, args):
        data = yield ctx.read(args["blob"], 0, 16)
        return data.hex()

    @registry.register("consume")
    def consume(ctx, args):
        return len(args["part"])

    runtime = GlobalSpaceRuntime(net, registry)
    for name in ("n0", "n1", "n2"):
        runtime.add_node(name)
    blob = runtime.create_object("n2", size=1 << 20)
    blob.write(0, b"hello")
    refs = {"blob": GlobalRef(blob.oid, 0, "read")}
    return sim, net, runtime, refs


def _invoke_once(sim, runtime, code_ref, refs):
    def run():
        result = yield sim.spawn(runtime.invoke("n0", code_ref, data_refs=refs))
        return result
    return sim.run_process(run())


def cmd_selfcheck(args: argparse.Namespace) -> int:
    import repro
    # Imported at call time so tests can monkeypatch the sweep.
    from repro.discovery import SCHEME_CONTROLLER, SCHEME_E2E, run_fig2_point

    print(f"repro {repro.__version__} self-check (seed {args.seed})")
    failures = 0

    sim, _net, runtime, refs = _build_cluster(args.seed)
    _, code_ref = runtime.create_code("n0", "selfcheck", text_size=256)
    result = _invoke_once(sim, runtime, code_ref, refs)
    if result.value == "hello":
        print(f"  rendezvous invoke: ok (ran on {result.executed_at}, "
              f"{result.latency_us:.1f}us simulated)")
    else:
        failures += 1
        print(f"  rendezvous invoke: FAILED (got {result.value!r}, "
              f"wanted 'hello')")

    for scheme in (SCHEME_CONTROLLER, SCHEME_E2E):
        point = run_fig2_point(scheme, 50, n_accesses=30)
        if point.failures == 0:
            print(f"  discovery [{scheme:10s}]: ok "
                  f"(mean {point.mean_rtt_us:.1f}us, "
                  f"{point.broadcasts_per_100:.0f} broadcasts/100)")
        else:
            failures += 1
            print(f"  discovery [{scheme:10s}]: FAILED "
                  f"({point.failures} failed accesses)")

    if failures:
        print(f"self-check FAILED: {failures} check(s) failed")
        return 1
    print("all good — try `pytest tests/` and "
          "`pytest benchmarks/ --benchmark-only` next")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import snapshot_to_jsonl
    from repro.sim.trace import percentile

    sim, net, runtime, refs = _build_cluster(args.seed)
    _, code_ref = runtime.create_code("n0", "selfcheck", text_size=256)
    _invoke_once(sim, runtime, code_ref, refs)
    snapshot = net.metrics.snapshot()
    if args.jsonl:
        sys.stdout.write(snapshot_to_jsonl(snapshot))
        return 0
    print(f"cluster report (seed {args.seed}, t={sim.now:.1f}us, "
          f"{len(net.metrics)} tracers)")
    print("counters:")
    for key in sorted(snapshot["counters"]):
        print(f"  {key:40s} {snapshot['counters'][key]}")
    if snapshot["series"]:
        print("series:  (count / mean / p99, us)")
        for key in sorted(snapshot["series"]):
            values = snapshot["series"][key]
            mean = sum(values) / len(values)
            print(f"  {key:40s} {len(values)} / {mean:.1f} / "
                  f"{percentile(values, 99.0):.1f}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro import GlobalRef
    from repro.core.objectid import ObjectID
    from repro.obs import write_chrome_trace

    sim, net, runtime, refs = _build_cluster(args.seed)
    if args.example == "quickstart":
        _, code_ref = runtime.create_code("n0", "selfcheck", text_size=256)
        results = [_invoke_once(sim, runtime, code_ref, refs)]
    else:  # pipeline: stage 1 materializes where it ran; stage 2 pulls it
        _, produce_ref = runtime.create_code("n0", "produce", text_size=512)
        _, consume_ref = runtime.create_code("n1", "consume", text_size=512)

        def run():
            first = yield sim.spawn(runtime.invoke(
                "n0", produce_ref, data_refs=refs, materialize_result=True))
            intermediate = GlobalRef(
                ObjectID.from_hex(first.value["__materialized__"]), 0, "read")
            second = yield sim.spawn(runtime.invoke(
                "n1", consume_ref, data_refs={"part": intermediate},
                decode_args=["part"], flops=5e6))
            return [first, second]

        results = sim.run_process(run())
    out = args.out or f"trace_{args.example}.json"
    document = write_chrome_trace(out, runtime.spans.spans())
    spans = [e for e in document["traceEvents"] if e.get("ph") == "X"]
    print(f"{args.example}: {len(results)} invocation(s), "
          f"{len(spans)} spans across {len({e['pid'] for e in spans})} trace(s)")
    for result in results:
        phases = runtime.spans.phases(result.invoke_id)
        timeline = ", ".join(f"{name} {us:.1f}us"
                             for name, us in phases.items() if us > 0)
        print(f"  invoke #{result.invoke_id} on {result.executed_at}: "
              f"{result.latency_us:.1f}us = {timeline}")
    print(f"wrote {out} — load it in chrome://tracing or "
          "https://ui.perfetto.dev")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (BenchError, compare_files, dump_document,
                             results_document, run_scenarios, scenario_names,
                             select)

    if getattr(args, "bench_command", None) == "compare":
        return compare_files(args.baseline, args.candidate,
                             threshold=args.threshold,
                             wall_threshold=args.wall_threshold)
    if args.list:
        for name in scenario_names():
            print(name)
        return 0
    try:
        specs = select(args.filter)
    except BenchError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    mode = "quick" if args.quick else "full"
    print(f"repro bench: {len(specs)} scenario(s), seed {args.seed}, {mode} mode")
    records = run_scenarios(specs, seed=args.seed, quick=args.quick,
                            report=print)
    if args.json:
        document = results_document(records, seed=args.seed, quick=args.quick,
                                    include_wall=args.wall)
        dump_document(document, args.json)
        determinism = ("includes wall-clock fields (NOT byte-stable)"
                       if args.wall else "deterministic for this seed")
        print(f"wrote {args.json} ({determinism})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Self-check, cluster metrics report, and trace export "
                    "for the repro package.")
    sub = parser.add_subparsers(dest="command")

    check = sub.add_parser("selfcheck", help="30-second installation check "
                                             "(the default subcommand)")
    check.add_argument("--seed", type=int, default=1,
                       help="simulation seed (default 1)")
    check.set_defaults(fn=cmd_selfcheck)

    report = sub.add_parser("report",
                            help="print the cluster-wide metrics snapshot")
    report.add_argument("--seed", type=int, default=1,
                        help="simulation seed (default 1)")
    report.add_argument("--jsonl", action="store_true",
                        help="emit JSON lines instead of the table")
    report.set_defaults(fn=cmd_report)

    trace = sub.add_parser("trace",
                           help="run an example and export a Chrome trace")
    trace.add_argument("example", choices=_EXAMPLES,
                       help="which workload to trace")
    trace.add_argument("--seed", type=int, default=1,
                       help="simulation seed (default 1)")
    trace.add_argument("--out", default=None,
                       help="output path (default trace_<example>.json)")
    trace.set_defaults(fn=cmd_trace)

    bench = sub.add_parser(
        "bench", help="run the deterministic benchmark catalogue")
    bench.add_argument("--quick", action="store_true",
                       help="CI-sized scales (seconds, not minutes)")
    bench.add_argument("--filter", default=None, metavar="PAT",
                       help="run only scenarios matching PAT "
                            "(substring or glob)")
    bench.add_argument("--json", default=None, metavar="FILE",
                       help="write results to FILE (deterministic for a "
                            "fixed seed unless --wall is given)")
    bench.add_argument("--seed", type=int, default=1,
                       help="simulation seed (default 1)")
    bench.add_argument("--wall", action="store_true",
                       help="include wall-clock fields in the JSON "
                            "(breaks byte-stability)")
    bench.add_argument("--list", action="store_true",
                       help="list scenario names and exit")
    bench.set_defaults(fn=cmd_bench)
    bench_sub = bench.add_subparsers(dest="bench_command")
    compare = bench_sub.add_parser(
        "compare", help="diff two BENCH.json files; exit 1 past threshold")
    compare.add_argument("baseline", help="baseline BENCH.json")
    compare.add_argument("candidate", help="candidate BENCH.json")
    compare.add_argument("--threshold", type=float, default=0.10,
                         help="max tolerated drop in the simulated rate "
                              "(default 0.10 = 10%%)")
    compare.add_argument("--wall-threshold", type=float, default=0.30,
                         help="max tolerated drop in the wall rate when "
                              "both files carry one (default 0.30)")
    compare.set_defaults(fn=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Bare `python -m repro` (or with only flags) means selfcheck, but
    # keep `-h/--help` pointing at the top-level usage.
    if not argv or (argv[0].startswith("-")
                    and argv[0] not in ("-h", "--help")):
        argv.insert(0, "selfcheck")
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
