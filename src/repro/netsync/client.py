"""Client-side helpers for the in-network synchronization services."""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..sim import Future, Simulator, Tracer
from ..net.host import Host
from ..net.packet import Packet
from .services import (
    KIND_LOCK_ACQ,
    KIND_LOCK_GRANT,
    KIND_LOCK_REL,
    KIND_SEQ_REQ,
    KIND_SEQ_RSP,
)

__all__ = ["SyncClient"]

_req_ids = itertools.count(1)


class SyncClient:
    """A host's handle on a sequencer / lock service.

    ``service`` is the *name* of whichever element runs the service —
    a switch (in-network) or a host (baseline); the wire protocol is
    identical, which is what makes the E13 comparison clean.
    """

    def __init__(self, host: Host, service: str,
                 tracer: Optional[Tracer] = None):
        self.host = host
        self.sim: Simulator = host.sim
        self.service = service
        self.tracer = tracer or Tracer()
        self._pending: Dict[int, Future] = {}
        host.on(KIND_SEQ_RSP, self._on_reply)
        host.on(KIND_LOCK_GRANT, self._on_reply)

    def _on_reply(self, packet: Packet) -> None:
        future = self._pending.pop(packet.payload["req_id"], None)
        if future is not None and not future.done:
            future.set_result(packet)

    def _request(self, kind: str, payload: dict, payload_bytes: int = 24):
        req_id = next(_req_ids)
        future = Future(self.sim, name=f"sync-{req_id}")
        self._pending[req_id] = future
        self.host.send(Packet(
            kind=kind, src=self.host.name, dst=self.service,
            payload={"req_id": req_id, **payload}, payload_bytes=payload_bytes,
        ))
        return future

    def next_sequence(self, stream: str = "default"):
        """Process: obtain the next ticket of ``stream``."""
        start = self.sim.now
        reply = yield self._request(KIND_SEQ_REQ, {"stream": stream})
        self.tracer.sample("sync.seq_us", self.sim.now - start, self.sim.now)
        return reply.payload["value"]

    def acquire_lock(self, name: str):
        """Process: block until the named lock is granted to us."""
        start = self.sim.now
        yield self._request(KIND_LOCK_ACQ, {"name": name})
        self.tracer.sample("sync.lock_us", self.sim.now - start, self.sim.now)
        return True

    def release_lock(self, name: str) -> None:
        """Fire-and-forget release (the service ignores stale releases)."""
        self.host.send(Packet(
            kind=KIND_LOCK_REL, src=self.host.name, dst=self.service,
            payload={"name": name}, payload_bytes=24,
        ))
