"""In-network synchronization services (§5).

"At the level of the system co-design, we will experiment with
offloading some synchronization and arbitration concerns to the
programmable network (which now functions somewhat as a memory bus)" —
citing NetChain's sub-RTT coordination and in-network optimistic
concurrency control.

Two services that run *inside a switch* (data-plane state, half the
round trip of a host-based server on the same path), plus host-based
baselines with identical wire protocols so benchmarks compare like for
like:

* **sequencer** — per-stream monotone counters (ticket dispensers,
  transaction timestamping);
* **lock manager** — named exclusive locks with FIFO grant queues.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..sim import Tracer
from ..net.host import Host
from ..net.packet import Packet
from ..net.switch import Switch

__all__ = [
    "SwitchSequencer",
    "HostSequencer",
    "SwitchLockService",
    "HostLockService",
    "KIND_SEQ_REQ",
    "KIND_SEQ_RSP",
    "KIND_LOCK_ACQ",
    "KIND_LOCK_GRANT",
    "KIND_LOCK_REL",
]

KIND_SEQ_REQ = "sync.seq_req"
KIND_SEQ_RSP = "sync.seq_rsp"
KIND_LOCK_ACQ = "sync.lock_acq"
KIND_LOCK_GRANT = "sync.lock_grant"
KIND_LOCK_REL = "sync.lock_rel"


class _SequencerCore:
    """Shared per-stream counter logic."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self.tickets_issued = 0

    def next_value(self, stream: str) -> int:
        """Issue the next ticket of ``stream``."""
        value = self._counters.get(stream, 0) + 1
        self._counters[stream] = value
        self.tickets_issued += 1
        return value


class SwitchSequencer:
    """A sequencer living in the switch pipeline.

    Requests addressed to the switch's own name are answered from
    register state in one pipeline pass — the requester pays exactly the
    RTT to the switch, not to any host behind it.
    """

    def __init__(self, switch: Switch, tracer: Optional[Tracer] = None):
        self.switch = switch
        self.core = _SequencerCore()
        self.tracer = tracer or Tracer()
        switch.register_service(KIND_SEQ_REQ, self._on_request)

    def _on_request(self, packet: Packet) -> None:
        value = self.core.next_value(packet.payload["stream"])
        self.tracer.count("sequencer.ticket")
        self.switch.send_from_service(Packet(
            kind=KIND_SEQ_RSP, src=self.switch.name, dst=packet.src,
            payload={"req_id": packet.payload["req_id"], "value": value},
            payload_bytes=16,
        ))


class HostSequencer:
    """The baseline: the same sequencer as an end-host server."""

    def __init__(self, host: Host, tracer: Optional[Tracer] = None):
        self.host = host
        self.core = _SequencerCore()
        self.tracer = tracer or Tracer()
        host.on(KIND_SEQ_REQ, self._on_request)

    def _on_request(self, packet: Packet) -> None:
        value = self.core.next_value(packet.payload["stream"])
        self.tracer.count("sequencer.ticket")
        self.host.send(Packet(
            kind=KIND_SEQ_RSP, src=self.host.name, dst=packet.src,
            payload={"req_id": packet.payload["req_id"], "value": value},
            payload_bytes=16,
        ))


class _LockCore:
    """Named exclusive locks with FIFO waiters.

    Returns, for each event, the (holder, request) pairs that should
    receive grants now.
    """

    def __init__(self) -> None:
        self._holders: Dict[str, str] = {}
        self._waiters: Dict[str, Deque[Tuple[str, int]]] = {}
        self.grants = 0
        self.queued = 0

    def acquire(self, name: str, requester: str, req_id: int):
        """Try to take the lock; returns grants to deliver now."""
        if name not in self._holders:
            self._holders[name] = requester
            self.grants += 1
            return [(requester, req_id)]
        self._waiters.setdefault(name, deque()).append((requester, req_id))
        self.queued += 1
        return []

    def release(self, name: str, requester: str):
        """Release a holder; returns follow-on grants to deliver."""
        if self._holders.get(name) != requester:
            return []  # stale or duplicate release: ignore
        waiters = self._waiters.get(name)
        if waiters:
            next_requester, req_id = waiters.popleft()
            self._holders[name] = next_requester
            self.grants += 1
            return [(next_requester, req_id)]
        del self._holders[name]
        return []

    def holder_of(self, name: str) -> Optional[str]:
        """Current holder of the named lock, or None."""
        return self._holders.get(name)


class SwitchLockService:
    """Exclusive locks arbitrated in the switch (NetChain-flavoured)."""

    def __init__(self, switch: Switch, tracer: Optional[Tracer] = None):
        self.switch = switch
        self.core = _LockCore()
        self.tracer = tracer or Tracer()
        switch.register_service(KIND_LOCK_ACQ, self._on_acquire)
        switch.register_service(KIND_LOCK_REL, self._on_release)

    def _grant(self, requester: str, req_id: int, name: str) -> None:
        self.tracer.count("locks.granted")
        self.switch.send_from_service(Packet(
            kind=KIND_LOCK_GRANT, src=self.switch.name, dst=requester,
            payload={"req_id": req_id, "name": name}, payload_bytes=24,
        ))

    def _on_acquire(self, packet: Packet) -> None:
        grants = self.core.acquire(packet.payload["name"], packet.src,
                                   packet.payload["req_id"])
        for requester, req_id in grants:
            self._grant(requester, req_id, packet.payload["name"])

    def _on_release(self, packet: Packet) -> None:
        grants = self.core.release(packet.payload["name"], packet.src)
        for requester, req_id in grants:
            self._grant(requester, req_id, packet.payload["name"])


class HostLockService:
    """The baseline: the same lock manager as an end-host server."""

    def __init__(self, host: Host, tracer: Optional[Tracer] = None):
        self.host = host
        self.core = _LockCore()
        self.tracer = tracer or Tracer()
        host.on(KIND_LOCK_ACQ, self._on_acquire)
        host.on(KIND_LOCK_REL, self._on_release)

    def _grant(self, requester: str, req_id: int, name: str) -> None:
        self.tracer.count("locks.granted")
        self.host.send(Packet(
            kind=KIND_LOCK_GRANT, src=self.host.name, dst=requester,
            payload={"req_id": req_id, "name": name}, payload_bytes=24,
        ))

    def _on_acquire(self, packet: Packet) -> None:
        grants = self.core.acquire(packet.payload["name"], packet.src,
                                   packet.payload["req_id"])
        for requester, req_id in grants:
            self._grant(requester, req_id, packet.payload["name"])

    def _on_release(self, packet: Packet) -> None:
        grants = self.core.release(packet.payload["name"], packet.src)
        for requester, req_id in grants:
            self._grant(requester, req_id, packet.payload["name"])
