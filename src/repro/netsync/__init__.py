"""In-network synchronization (§5): sequencers and lock managers hosted
in switch pipelines, with host-based baselines sharing the same wire
protocol."""

from .client import SyncClient
from .services import (
    HostLockService,
    HostSequencer,
    KIND_LOCK_ACQ,
    KIND_LOCK_GRANT,
    KIND_LOCK_REL,
    KIND_SEQ_REQ,
    KIND_SEQ_RSP,
    SwitchLockService,
    SwitchSequencer,
)

__all__ = [
    "SwitchSequencer",
    "HostSequencer",
    "SwitchLockService",
    "HostLockService",
    "SyncClient",
    "KIND_SEQ_REQ",
    "KIND_SEQ_RSP",
    "KIND_LOCK_ACQ",
    "KIND_LOCK_GRANT",
    "KIND_LOCK_REL",
]
