"""E13 / §5: offloading synchronization to the programmable network.

Paper: "we will experiment with offloading some synchronization and
arbitration concerns to the programmable network (which now functions
somewhat as a memory bus)" — citing NetChain's sub-RTT coordination and
in-network optimistic concurrency control.

Compares a sequencer and a lock manager hosted *in the spine switch's
pipeline* against the identical services on an end host hanging off the
same spine: every coordination message saves the spine->host leg both
ways, and the saving compounds under lock contention because grant
hand-offs also originate closer to the requesters.
"""

import pytest

from repro.net import build_two_tier
from repro.netsync import (
    HostLockService,
    HostSequencer,
    SwitchLockService,
    SwitchSequencer,
    SyncClient,
)
from repro.sim import AllOf, Simulator, Timeout, summarize

from conftest import bench_check, print_table

N_CLIENTS = 4
TICKETS_PER_CLIENT = 25
LOCK_ROUNDS = 10
CRITICAL_SECTION_US = 20.0


def _fabric(seed, in_network):
    sim = Simulator(seed=seed)
    net = build_two_tier(sim, n_leaves=2, hosts_per_leaf=2)
    if in_network:
        service = "spine0"
        sequencer = SwitchSequencer(net.switch("spine0"))
        locks = SwitchLockService(net.switch("spine0"))
    else:
        net.add_host("syncd")
        net.connect("syncd", "spine0")
        sequencer = HostSequencer(net.host("syncd"))
        locks = HostLockService(net.host("syncd"))
        service = "syncd"
    clients = [SyncClient(net.host(name), service)
               for name in ("h0_0", "h0_1", "h1_0", "h1_1")]
    return sim, sequencer, locks, clients


def run_sequencer(in_network: bool, seed: int = 29):
    """All clients draw tickets concurrently; returns (makespan, mean latency)."""
    sim, sequencer, locks, clients = _fabric(seed, in_network)
    tickets = []

    def worker(client):
        for _ in range(TICKETS_PER_CLIENT):
            value = yield from client.next_sequence("txn")
            tickets.append(value)
        return None

    def proc():
        yield AllOf([sim.spawn(worker(c)) for c in clients])

    sim.run_process(proc())
    assert sorted(tickets) == list(range(1, N_CLIENTS * TICKETS_PER_CLIENT + 1))
    latencies = [s for c in clients for s in c.tracer.series.samples("sync.seq_us")]
    return sim.now, summarize(latencies).mean


def run_locks(in_network: bool, seed: int = 31):
    """Contended lock: every client loops acquire/work/release."""
    sim, sequencer, locks, clients = _fabric(seed, in_network)
    critical = [0]
    max_concurrent = [0]

    def worker(client):
        for _ in range(LOCK_ROUNDS):
            yield from client.acquire_lock("hot")
            critical[0] += 1
            max_concurrent[0] = max(max_concurrent[0], critical[0])
            yield Timeout(CRITICAL_SECTION_US)
            critical[0] -= 1
            client.release_lock("hot")
        return None

    def proc():
        yield AllOf([sim.spawn(worker(c)) for c in clients])

    sim.run_process(proc())
    assert max_concurrent[0] == 1  # mutual exclusion held throughout
    return sim.now, locks.core.grants


@pytest.fixture(scope="module")
def outcomes():
    return {
        ("sequencer", True): run_sequencer(True),
        ("sequencer", False): run_sequencer(False),
        ("locks", True): run_locks(True),
        ("locks", False): run_locks(False),
    }


def test_network_sync_table(outcomes, benchmark):
    benchmark.pedantic(lambda: run_sequencer(True), rounds=3, iterations=1)
    seq_net, seq_host = outcomes[("sequencer", True)], outcomes[("sequencer", False)]
    lock_net, lock_host = outcomes[("locks", True)], outcomes[("locks", False)]
    rows = [
        ["sequencer", "in-switch", seq_net[0], seq_net[1]],
        ["sequencer", "host", seq_host[0], seq_host[1]],
        ["locks", "in-switch", lock_net[0], lock_net[0] / (N_CLIENTS * LOCK_ROUNDS)],
        ["locks", "host", lock_host[0], lock_host[0] / (N_CLIENTS * LOCK_ROUNDS)],
    ]
    print_table(
        "Coordination offload: in-switch vs host-based services",
        ["service", "placement", "makespan_us", "per-op_us"],
        rows,
    )


def test_in_switch_sequencer_lower_latency(outcomes, benchmark):
    def check():
        _, mean_net = outcomes[("sequencer", True)]
        _, mean_host = outcomes[("sequencer", False)]
        assert mean_net < mean_host

    bench_check(benchmark, check)


def test_in_switch_sequencer_finishes_sooner(outcomes, benchmark):
    def check():
        assert outcomes[("sequencer", True)][0] < outcomes[("sequencer", False)][0]

    bench_check(benchmark, check)


def test_in_switch_locks_higher_throughput(outcomes, benchmark):
    def check():
        # Same number of grants, less wall-clock: the grant hand-off path
        # is shorter from the switch.
        makespan_net, grants_net = outcomes[("locks", True)]
        makespan_host, grants_host = outcomes[("locks", False)]
        assert grants_net == grants_host == N_CLIENTS * LOCK_ROUNDS
        assert makespan_net < makespan_host

    bench_check(benchmark, check)


def test_saving_is_roughly_the_extra_leg(outcomes, benchmark):
    def check():
        # One extra 5us link each way per request: the host variant's
        # per-ticket latency exceeds the switch variant's by ~2 legs.
        _, mean_net = outcomes[("sequencer", True)]
        _, mean_host = outcomes[("sequencer", False)]
        extra = mean_host - mean_net
        assert 5.0 < extra < 30.0

    bench_check(benchmark, check)
