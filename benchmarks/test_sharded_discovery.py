"""E18 / §3: sharding the controller directory and leasing its answers.

Paper: "a directory service... could be implemented in a distributed
fashion across controllers" and requesters "could cache the result of
discovery" so repeated accesses skip the lookup.  This experiment
shards the directory over N controller hosts with a rendezvous hash
(no coordination, every host derives the same map) and puts a TTL
lease cache in front of it:

* advertise load divides across shards — with 4 shards no shard sees
  more than ~1/3 of what the single controller absorbed;
* a lease hit is one RTT (straight to the holder), a miss two (shard
  lookup, then the access) — against E2E's broadcast-per-miss;
* a shard crash mid-stream is absorbed: advertisers re-register with
  the successor shard, requesters fail over on resolve timeouts, and
  the whole access stream still completes.
"""

from repro.discovery import run_sharded_point

from conftest import bench_check, print_table

SEED = 18
N_OBJECTS = 40
N_ACCESSES = 120
SHARD_COUNTS = [1, 2, 4]


def test_advertise_load_divides_across_shards(benchmark):
    points = {n: run_sharded_point(n, n_objects=N_OBJECTS,
                                   n_accesses=N_ACCESSES, seed=SEED)
              for n in SHARD_COUNTS}

    def check():
        baseline = sum(points[1].advertise_load.values())
        assert baseline == N_OBJECTS
        rows = []
        for n in SHARD_COUNTS:
            load = points[n].advertise_load
            rows.append((n, sum(load.values()), max(load.values()),
                         points[n].mean_rtt_us))
            assert sum(load.values()) == baseline  # nothing went missing
        # The acceptance bar: with 4 shards no shard absorbs more than
        # about a third of the single-controller advertise load.
        assert max(points[4].advertise_load.values()) <= baseline / 3 + 1
        print_table(
            "E18a: directory advertise load vs shard count",
            ["shards", "adverts total", "max per shard", "mean RTT (us)"],
            rows)

    bench_check(benchmark, check)


def test_lease_hits_are_one_rtt(benchmark):
    leased = run_sharded_point(4, n_objects=N_OBJECTS,
                               n_accesses=N_ACCESSES, seed=SEED)
    unleased = run_sharded_point(4, n_objects=N_OBJECTS,
                                 n_accesses=N_ACCESSES, seed=SEED,
                                 use_leases=False)

    def check():
        # Warm-up resolved every object, so the measured stream runs
        # entirely on lease hits: exactly one exchange per access.
        assert leased.failures == 0 and unleased.failures == 0
        assert leased.mean_round_trips == 1.0
        assert leased.lease_hits == N_ACCESSES
        # Without the cache every access pays the shard lookup first.
        assert unleased.mean_round_trips == 2.0
        assert unleased.lease_hits == 0
        assert leased.mean_rtt_us < unleased.mean_rtt_us
        print_table(
            "E18b: the lease cache halves the access path",
            ["cache", "mean RTT (us)", "p95 RTT (us)", "RTTs/access",
             "hits", "misses"],
            [("leases", leased.mean_rtt_us, leased.p95_rtt_us,
              leased.mean_round_trips, leased.lease_hits,
              leased.lease_misses),
             ("none", unleased.mean_rtt_us, unleased.p95_rtt_us,
              unleased.mean_round_trips, unleased.lease_hits,
              unleased.lease_misses)])

    bench_check(benchmark, check)


def test_sharded_tracks_e2e_on_a_warm_rack(benchmark):
    points = [
        ("e2e", run_sharded_point(1, n_objects=N_OBJECTS,
                                  n_accesses=N_ACCESSES, seed=SEED,
                                  scheme="e2e")),
        ("1 shard", run_sharded_point(1, n_objects=N_OBJECTS,
                                      n_accesses=N_ACCESSES, seed=SEED)),
        ("4 shards", run_sharded_point(4, n_objects=N_OBJECTS,
                                       n_accesses=N_ACCESSES, seed=SEED)),
    ]

    def check():
        rows = []
        for label, point in points:
            assert point.failures == 0
            rows.append((label, point.mean_rtt_us, point.p95_rtt_us,
                         point.mean_round_trips))
        by_label = dict(points)
        # Once leases are warm, the sharded scheme matches E2E's cached
        # fast path (both go straight to the holder) — the directory
        # pays only on misses, not on every access.
        assert abs(by_label["4 shards"].mean_rtt_us
                   - by_label["e2e"].mean_rtt_us) < 5.0
        print_table(
            "E18c: warm-rack access RTT by scheme (Zipf stream)",
            ["scheme", "mean RTT (us)", "p95 RTT (us)", "RTTs/access"],
            rows)

    bench_check(benchmark, check)


def test_shard_crash_absorbed_by_failover(benchmark):
    point = run_sharded_point(
        4, n_objects=16, n_accesses=80, seed=SEED,
        lease_ttl_us=20_000.0, refresh_interval_us=5_000.0,
        gap_us=1_000.0, shard_crash_window=(30_000.0, 90_000.0))

    def check():
        # The hottest object's shard is down for 60 simulated ms in the
        # middle of the stream; every access must still complete.
        assert point.counters.get("faults.injector:faults.injected.crash") == 1
        assert point.failures == 0
        assert point.shard_failovers >= 1
        print_table(
            "E18d: shard crash mid-stream",
            ["accesses", "failed", "failovers", "lease hits", "invalidated",
             "mean RTT (us)"],
            [(80, point.failures, point.shard_failovers, point.lease_hits,
              point.lease_invalidated, point.mean_rtt_us)])

    bench_check(benchmark, check)
