"""E12h / §4: the hybrid scheme under limited switch memory.

Paper: "consider combinations of approaches in case of limited hardware
capabilities."

The hybrid accessor layers a host destination cache over controller-
installed identity routes.  Sweeping the switch identity-table capacity
against a fixed object population shows the combination's value: access
latency stays at ~1 RTT across the whole range, while the cost of
insufficient table memory appears as flood traffic (first-touch only)
instead of latency — and a pure-E2E client pays 2 RTTs on every first
touch regardless of table size.
"""

import pytest

from repro.core import IDAllocator, ObjectSpace
from repro.discovery import E2EResolver, HybridAccessor, ObjectHome, SdnController, advertise
from repro.net import build_paper_topology
from repro.sim import Simulator, Timeout, summarize

from conftest import bench_check, print_table

N_OBJECTS = 40
CAPACITIES = [0.0, 0.25, 0.5, 1.0]  # fraction of the population in-table


def run_hybrid_point(table_fraction: float, seed: int = 23, scheme: str = "hybrid"):
    """Touch every object once, then re-touch; report per-phase stats."""
    sim = Simulator(seed=seed)
    capacity = max(1, int(N_OBJECTS * table_fraction)) if table_fraction else 1
    net = build_paper_topology(
        sim, with_controller_host=True,
        identity_capacity=capacity if table_fraction > 0 else 1,
    )
    allocator = IDAllocator(seed=seed + 1)
    homes = {
        name: ObjectHome(net.host(name), ObjectSpace(allocator, host_name=name))
        for name in ("resp1", "resp2")
    }
    controller = SdnController(net, net.host("controller"))
    if scheme == "hybrid":
        accessor = HybridAccessor(net.host("driver"))
    else:
        accessor = E2EResolver(net.host("driver"))
    pool = []
    for i in range(N_OBJECTS):
        home = homes["resp1"] if i % 2 == 0 else homes["resp2"]
        obj = home.space.create_object(size=1024)
        pool.append(obj.oid)
        if table_fraction > 0:
            advertise(home.host, obj.oid)
    first, second = [], []
    flood_baseline = {}

    def driver():
        yield Timeout(5_000)
        # Snapshot control-plane flooding (advertisements to a not-yet-
        # learned controller) so the reported count is data-path only.
        flood_baseline["n"] = sum(
            s.tracer.counters["switch.flooded"] for s in net.switches)
        for oid in pool:
            record = yield sim.spawn(accessor.access(oid))
            first.append(record)
        for oid in pool:
            record = yield sim.spawn(accessor.access(oid))
            second.append(record)
        return None

    sim.run_process(driver())
    flooded = (sum(s.tracer.counters["switch.flooded"] for s in net.switches)
               - flood_baseline["n"])
    assert all(r.ok for r in first + second)
    return {
        "first_mean_us": summarize([r.latency_us for r in first]).mean,
        "first_rtts": sum(r.round_trips for r in first) / len(first),
        "second_mean_us": summarize([r.latency_us for r in second]).mean,
        "flooded_packets": flooded,
        "install_failures": controller.install_failures,
    }


@pytest.fixture(scope="module")
def sweep():
    results = {fraction: run_hybrid_point(fraction) for fraction in CAPACITIES}
    results["e2e"] = run_hybrid_point(1.0, scheme="e2e")
    return results


def test_hybrid_table(sweep, benchmark):
    benchmark.pedantic(lambda: run_hybrid_point(0.5), rounds=2, iterations=1)
    rows = []
    for fraction in CAPACITIES:
        stats = sweep[fraction]
        rows.append([f"hybrid {fraction:.0%}", stats["first_mean_us"],
                     stats["first_rtts"], stats["second_mean_us"],
                     stats["flooded_packets"], stats["install_failures"]])
    e2e = sweep["e2e"]
    rows.append(["pure E2E", e2e["first_mean_us"], e2e["first_rtts"],
                 e2e["second_mean_us"], e2e["flooded_packets"],
                 e2e["install_failures"]])
    print_table(
        f"Hybrid discovery vs identity-table coverage ({N_OBJECTS} objects)",
        ["scheme/coverage", "first_mean_us", "first_rtts", "repeat_mean_us",
         "flooded_pkts", "tbl_fails"],
        rows,
    )


def test_hybrid_first_touch_is_single_round_trip(sweep, benchmark):
    def check():
        for fraction in CAPACITIES:
            assert sweep[fraction]["first_rtts"] == pytest.approx(1.0, abs=0.01)

    bench_check(benchmark, check)


def test_e2e_first_touch_pays_two_round_trips(sweep, benchmark):
    def check():
        assert sweep["e2e"]["first_rtts"] == pytest.approx(2.0, abs=0.01)

    bench_check(benchmark, check)


def test_flood_traffic_shrinks_with_table_coverage(sweep, benchmark):
    def check():
        floods = [sweep[f]["flooded_packets"] for f in CAPACITIES]
        assert floods == sorted(floods, reverse=True)
        assert floods[-1] == 0  # full coverage: flood-free data path

    bench_check(benchmark, check)


def test_repeat_accesses_uniform_everywhere(sweep, benchmark):
    def check():
        base = sweep[1.0]["second_mean_us"]
        for fraction in CAPACITIES:
            assert sweep[fraction]["second_mean_us"] == pytest.approx(base, rel=0.05)

    bench_check(benchmark, check)


def test_partial_tables_log_install_failures(sweep, benchmark):
    def check():
        assert sweep[0.25]["install_failures"] > 0
        assert sweep[1.0]["install_failures"] == 0

    bench_check(benchmark, check)


def run_skewed_point(hot_coverage_only: bool, seed: int = 27,
                     n_accesses: int = 150, skew: float = 1.2):
    """Zipf-skewed accesses with a table sized for just the hot set.

    With real (skewed) popularity, covering the hot objects captures
    most of the traffic — the practical argument for small identity
    tables.  ``hot_coverage_only=False`` runs the same workload with
    full coverage as the reference.
    """
    import itertools

    from repro.workloads import zipf

    sim = Simulator(seed=seed)
    hot_set = max(1, N_OBJECTS // 8)
    capacity = hot_set if hot_coverage_only else N_OBJECTS
    net = build_paper_topology(sim, with_controller_host=True,
                               identity_capacity=capacity)
    allocator = IDAllocator(seed=seed + 1)
    homes = {
        name: ObjectHome(net.host(name), ObjectSpace(allocator, host_name=name))
        for name in ("resp1", "resp2")
    }
    SdnController(net, net.host("controller"))
    accessor = HybridAccessor(net.host("driver"))
    pool = []
    for i in range(N_OBJECTS):
        home = homes["resp1"] if i % 2 == 0 else homes["resp2"]
        obj = home.space.create_object(size=1024)
        pool.append(obj.oid)
        # Advertise in popularity order: the table fills with the hot set.
        advertise(home.host, obj.oid)
    picker = zipf(pool, sim.rng, skew=skew)
    records = []
    flood_baseline = {}

    def driver():
        yield Timeout(5_000)
        flood_baseline["n"] = sum(
            s.tracer.counters["switch.flooded"] for s in net.switches)
        for oid in itertools.islice(picker, n_accesses):
            record = yield sim.spawn(accessor.access(oid))
            records.append(record)
        return None

    sim.run_process(driver())
    flooded = (sum(s.tracer.counters["switch.flooded"] for s in net.switches)
               - flood_baseline["n"])
    assert all(r.ok for r in records)
    return {
        "mean_us": summarize([r.latency_us for r in records]).mean,
        "flooded": flooded,
        "distinct_objects": len({r.oid for r in records}),
    }


def test_skewed_popularity_makes_partial_tables_cheap(benchmark):
    """With Zipf accesses, a table covering only the hot eighth of the
    population removes most flood traffic relative to its size."""

    def check():
        partial = run_skewed_point(hot_coverage_only=True)
        full = run_skewed_point(hot_coverage_only=False)
        rows = [
            [f"hot-set table ({N_OBJECTS // 8} entries)", partial["mean_us"],
             partial["flooded"], partial["distinct_objects"]],
            [f"full table ({N_OBJECTS} entries)", full["mean_us"],
             full["flooded"], full["distinct_objects"]],
        ]
        print_table(
            f"Zipf(1.2) accesses over {N_OBJECTS} objects: hot-set vs full coverage",
            ["identity table", "mean_us", "data_floods", "distinct_objs"],
            rows,
        )
        # Latency identical; floods happen only on cold first touches.
        assert partial["mean_us"] == pytest.approx(full["mean_us"], rel=0.05)
        assert full["flooded"] == 0
        # The partial table floods at most once per *cold* distinct object,
        # far below one flood per access.
        cold_distinct = partial["distinct_objects"]
        assert partial["flooded"] <= cold_distinct * 10  # 10 copies per flood

    bench_check(benchmark, check)
