"""E2 / Figure 3: E2E access time as the destination cache goes stale.

Paper: "Figure 3 shows what happens as the destination cache in E2E
grows stale.  Rebroadcasts cause a significant amount of overhead, as
the average number of RTTs goes up from 1 to 2.  As staleness becomes
overwhelming, the variability drops again since nearly all accesses
require 2 round trips.  Situations where the network can absorb some of
the cost here... can reduce network traffic and latency."

Also runs the two §4-suggested mitigations as ablations: old-holder
request forwarding (the network absorbing the cost) and the controller
scheme under the same movement churn.
"""

import pytest

from repro.discovery import SCHEME_CONTROLLER, run_fig3_point

from conftest import bench_check, print_table

SWEEP = [0, 10, 20, 30, 40, 50, 60, 70, 80, 90]
N_ACCESSES = 100


@pytest.fixture(scope="module")
def sweeps():
    return {
        "e2e": [run_fig3_point(pct, n_accesses=N_ACCESSES) for pct in SWEEP],
        "forwarding": [
            run_fig3_point(pct, n_accesses=N_ACCESSES, use_forwarding_hints=True)
            for pct in SWEEP
        ],
        "controller": [
            run_fig3_point(pct, n_accesses=N_ACCESSES, scheme=SCHEME_CONTROLLER)
            for pct in SWEEP
        ],
    }


def test_fig3_regenerate(sweeps, benchmark):
    benchmark.pedantic(
        lambda: run_fig3_point(50, n_accesses=N_ACCESSES), rounds=3, iterations=1)
    rows = []
    for pct, plain, fwd, ctl in zip(SWEEP, sweeps["e2e"], sweeps["forwarding"],
                                    sweeps["controller"]):
        rows.append([
            pct,
            plain.mean_rtt_us, plain.stdev_rtt_us, plain.mean_round_trips,
            fwd.mean_rtt_us, ctl.mean_rtt_us,
        ])
    print_table(
        "Figure 3: E2E access time vs % accesses to moved objects",
        ["moved%", "e2e_mean_us", "e2e_sd", "e2e_rtts",
         "fwd_mean_us", "ctl_mean_us"],
        rows,
    )


def test_mean_rises_from_one_to_two_rtts(sweeps, benchmark):
    def check():
        points = sweeps["e2e"]
        assert points[0].mean_round_trips == pytest.approx(1.0, abs=0.05)
        assert points[-1].mean_round_trips > 1.75
        assert points[-1].mean_rtt_us > 1.6 * points[0].mean_rtt_us

    bench_check(benchmark, check)


def test_variability_peaks_then_drops(sweeps, benchmark):
    def check():
        """The paper's distinctive non-monotone variance shape."""
        points = sweeps["e2e"]
        stdevs = [p.stdev_rtt_us for p in points]
        mid = max(stdevs[3:7])
        assert mid > stdevs[0]
        assert mid > stdevs[-1]

    bench_check(benchmark, check)


def test_growth_is_monotone_in_thirds(sweeps, benchmark):
    def check():
        points = sweeps["e2e"]
        means = [p.mean_rtt_us for p in points]
        assert sum(means[:3]) < sum(means[3:6]) < sum(means[-3:])

    bench_check(benchmark, check)


def test_forwarding_absorbs_the_cost(sweeps, benchmark):
    def check():
        """Old-holder forwarding removes both the rebroadcasts and most of
        the added latency — the §4 closing observation."""
        for plain, forwarded in zip(sweeps["e2e"][5:], sweeps["forwarding"][5:]):
            assert forwarded.mean_rtt_us < plain.mean_rtt_us
            assert forwarded.broadcasts_per_100 == 0

    bench_check(benchmark, check)


def test_controller_immune_to_staleness(sweeps, benchmark):
    def check():
        points = sweeps["controller"]
        base = points[0].mean_rtt_us
        for point in points:
            assert point.failures == 0
            assert point.mean_rtt_us == pytest.approx(base, rel=0.25)

    bench_check(benchmark, check)


def test_no_access_failures(sweeps, benchmark):
    def check():
        for series in sweeps.values():
            assert all(p.failures == 0 for p in series)

    bench_check(benchmark, check)

