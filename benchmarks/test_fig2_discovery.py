"""E1 / Figure 2: access RTT and broadcast load vs. fraction of new objects.

Paper: "Figure 2 shows RTT of both methods when accessing a mix of new
and old objects... Our results show that switch processing overhead is
minimal, even as new objects proliferate."

Regenerates both series of the figure: the controller scheme's flat
1-RTT unicast line, the E2E scheme's RTT climbing toward 2 RTTs, and the
secondary axis (broadcast messages per 100 accesses) growing linearly
with the new-object percentage.
"""

import pytest

from repro.discovery import SCHEME_CONTROLLER, SCHEME_E2E, run_fig2_point

from conftest import bench_check, print_table

SWEEP = [0, 10, 20, 30, 40, 50, 60, 70, 80, 90]
N_ACCESSES = 100


def _run_sweep(scheme):
    return [run_fig2_point(scheme, pct, n_accesses=N_ACCESSES) for pct in SWEEP]


@pytest.fixture(scope="module")
def sweeps():
    return {
        SCHEME_CONTROLLER: _run_sweep(SCHEME_CONTROLLER),
        SCHEME_E2E: _run_sweep(SCHEME_E2E),
    }


def test_fig2_regenerate(sweeps, benchmark):
    """Time one sweep point and print the full figure data."""
    benchmark.pedantic(
        lambda: run_fig2_point(SCHEME_E2E, 50, n_accesses=N_ACCESSES),
        rounds=3, iterations=1,
    )
    rows = []
    for pct, ctl, e2e in zip(SWEEP, sweeps[SCHEME_CONTROLLER], sweeps[SCHEME_E2E]):
        rows.append([
            pct,
            ctl.mean_rtt_us, ctl.stdev_rtt_us, ctl.broadcasts_per_100,
            e2e.mean_rtt_us, e2e.stdev_rtt_us, e2e.broadcasts_per_100,
        ])
    print_table(
        "Figure 2: RTT vs % accesses to new objects (controller | E2E)",
        ["new%", "ctl_mean_us", "ctl_sd", "ctl_bc/100",
         "e2e_mean_us", "e2e_sd", "e2e_bc/100"],
        rows,
    )


def test_controller_rtt_flat(sweeps, benchmark):
    def check():
        """Controller latency is uniform: new objects are advertised off the
        access path, so the line does not rise with new%."""
        points = sweeps[SCHEME_CONTROLLER]
        base = points[0].mean_rtt_us
        assert all(p.mean_rtt_us == pytest.approx(base, rel=0.05) for p in points)

    bench_check(benchmark, check)


def test_controller_never_broadcasts(sweeps, benchmark):
    def check():
        assert all(p.broadcasts_per_100 == 0 for p in sweeps[SCHEME_CONTROLLER])

    bench_check(benchmark, check)


def test_e2e_rtt_grows_with_new_fraction(sweeps, benchmark):
    def check():
        points = sweeps[SCHEME_E2E]
        assert points[-1].mean_rtt_us > 1.5 * points[0].mean_rtt_us
        # Monotone-ish growth: compare thirds of the sweep.
        first_third = sum(p.mean_rtt_us for p in points[:3])
        last_third = sum(p.mean_rtt_us for p in points[-3:])
        assert last_third > first_third

    bench_check(benchmark, check)


def test_e2e_broadcasts_track_new_percentage(sweeps, benchmark):
    def check():
        """Broadcast count per 100 accesses is roughly the new-object
        percentage (one discovery broadcast per first access)."""
        for pct, point in zip(SWEEP, sweeps[SCHEME_E2E]):
            assert point.broadcasts_per_100 == pytest.approx(pct, abs=18)

    bench_check(benchmark, check)


def test_e2e_approaches_two_round_trips(sweeps, benchmark):
    def check():
        assert sweeps[SCHEME_E2E][-1].mean_round_trips > 1.7

    bench_check(benchmark, check)


def test_switch_processing_overhead_minimal(sweeps, benchmark):
    def check():
        """The paper's headline: identity routing in the switch adds minimal
        overhead even as new objects proliferate — controller-scheme access
        latency is dominated by propagation, not switch processing."""
        point = sweeps[SCHEME_CONTROLLER][-1]
        # 0.5us of pipeline delay per switch crossing; a 3-hop path crosses
        # 2 switches each way. Processing is < 10% of the access RTT.
        processing_share = (2 * 2 * 0.5) / point.mean_rtt_us
        assert processing_share < 0.10

    bench_check(benchmark, check)


def test_no_access_failures(sweeps, benchmark):
    def check():
        for scheme_points in sweeps.values():
            assert all(p.failures == 0 for p in scheme_points)

    bench_check(benchmark, check)

