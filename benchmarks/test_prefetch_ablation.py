"""E8 / §3.1: identity-based prefetching from the FOT reachability graph.

Paper: "This graph can be used by the system to perform prefetching
based on data identity and actual reachability instead of some proxy for
identity (e.g., adjacency, as is used today)."

The workload walks a linked list whose records span many objects, with
the chunk-to-object assignment *shuffled* so allocation order disagrees
with link order.  A consumer node processes one chunk at a time while a
prefetcher (policy-dependent) pulls upcoming chunks from the remote
holder; the experiment counts demand-fetch stalls and total completion
time for three policies:

* ``none``         — every chunk transition stalls on a demand fetch;
* ``adjacency``    — prefetch allocation-order neighbours (today's proxy);
* ``reachability`` — prefetch the FOT successors of the current chunk.
"""

import random

import pytest

from repro.core import (
    FunctionRegistry,
    ReachabilityGraph,
    adjacency_prefetch,
    reachability_prefetch,
)
from repro.net import build_star
from repro.runtime import GlobalSpaceRuntime
from repro.sim import Simulator, Timeout
from repro.workloads import build_linked_list

from conftest import bench_check, print_table

N_RECORDS = 120
RECORDS_PER_OBJECT = 6
WORK_PER_CHUNK_US = 30.0
PREFETCH_BUDGET = 2

POLICIES = ("none", "adjacency", "reachability")


def _chunk_visit_order(space, head, objects):
    """Objects in the order the traversal enters them."""
    order = []
    oid, offset = head.oid, head.offset
    from repro.workloads import LIST_NODE

    while True:
        if not order or order[-1] != oid:
            order.append(oid)
        obj = space.get(oid)
        view = LIST_NODE.view(obj, offset)
        pointer = view.get("next")
        if pointer.is_null:
            return order
        oid, offset = obj.resolve(pointer)


def run_policy(policy: str, seed: int = 5):
    """One traversal under ``policy``; returns (stalls, total_us)."""
    sim = Simulator(seed=seed)
    net = build_star(sim, 2, prefix="n")
    runtime = GlobalSpaceRuntime(net, FunctionRegistry())
    consumer = runtime.add_node("n0")
    holder = runtime.add_node("n1")
    rng = random.Random(seed)
    head, objects, _ = build_linked_list(
        holder.space, N_RECORDS, RECORDS_PER_OBJECT, rng=rng,
        shuffle_objects=True)
    for obj in objects:
        runtime.adopt_object("n1", obj)
    visit_order = _chunk_visit_order(holder.space, head, objects)
    creation_order = [obj.oid for obj in objects]
    graph = ReachabilityGraph.from_objects(objects)
    stats = {"stalls": 0}

    def prefetch_picks(current_oid):
        if policy == "reachability":
            return reachability_prefetch(graph, current_oid, depth=2,
                                         budget=PREFETCH_BUDGET)
        if policy == "adjacency":
            return adjacency_prefetch(creation_order, current_oid,
                                      budget=PREFETCH_BUDGET)
        return []

    def consume():
        for i, oid in enumerate(visit_order):
            if oid not in consumer.space:
                stats["stalls"] += 1
                yield sim.spawn(consumer.fetch_object(oid))
            # Kick the prefetcher for upcoming chunks, asynchronously.
            for pick in prefetch_picks(oid):
                if pick not in consumer.space:
                    sim.spawn(consumer.fetch_object(pick))
            yield Timeout(WORK_PER_CHUNK_US)
        return None

    sim.run_process(consume())
    return stats["stalls"], sim.now


@pytest.fixture(scope="module")
def outcomes():
    return {policy: run_policy(policy) for policy in POLICIES}


def test_prefetch_ablation_table(outcomes, benchmark):
    benchmark.pedantic(lambda: run_policy("reachability"), rounds=3,
                       iterations=1)
    n_chunks = (N_RECORDS + RECORDS_PER_OBJECT - 1) // RECORDS_PER_OBJECT
    rows = [[policy, stalls, n_chunks, total_us]
            for policy, (stalls, total_us) in outcomes.items()]
    print_table(
        "Prefetch policy ablation (linked-list traversal, shuffled layout)",
        ["policy", "demand_stalls", "chunks", "total_us"],
        rows,
    )


def test_no_prefetch_stalls_on_every_chunk(outcomes, benchmark):
    def check():
        n_chunks = (N_RECORDS + RECORDS_PER_OBJECT - 1) // RECORDS_PER_OBJECT
        stalls, _ = outcomes["none"]
        assert stalls == n_chunks

    bench_check(benchmark, check)


def test_reachability_eliminates_most_stalls(outcomes, benchmark):
    def check():
        baseline_stalls, _ = outcomes["none"]
        reach_stalls, _ = outcomes["reachability"]
        # The FOT successors are the true next chunks: after the first
        # demand fetch the prefetcher stays ahead.
        assert reach_stalls <= baseline_stalls // 4

    bench_check(benchmark, check)


def test_adjacency_proxy_is_much_weaker(outcomes, benchmark):
    def check():
        adj_stalls, _ = outcomes["adjacency"]
        reach_stalls, _ = outcomes["reachability"]
        # With a shuffled layout, allocation-order neighbours are mostly
        # the wrong guess.
        assert adj_stalls > 2 * max(reach_stalls, 1)

    bench_check(benchmark, check)


def test_completion_time_ordering(outcomes, benchmark):
    def check():
        assert (outcomes["reachability"][1]
                < outcomes["adjacency"][1]
                <= outcomes["none"][1])

    bench_check(benchmark, check)


def test_ordered_layout_helps_adjacency(benchmark):
    """Sanity: when allocation order *matches* link order, the adjacency
    proxy works too — the paper's point is that identity works even when
    layout does not cooperate."""

    def check():
        sim = Simulator(seed=6)
        net = build_star(sim, 2, prefix="n")
        runtime = GlobalSpaceRuntime(net, FunctionRegistry())
        consumer = runtime.add_node("n0")
        holder = runtime.add_node("n1")
        head, objects, _ = build_linked_list(
            holder.space, N_RECORDS, RECORDS_PER_OBJECT,
            rng=random.Random(6), shuffle_objects=False)
        for obj in objects:
            runtime.adopt_object("n1", obj)
        creation_order = [obj.oid for obj in objects]
        visit_order = _chunk_visit_order(holder.space, head, objects)
        assert visit_order == creation_order  # layout matches links

    bench_check(benchmark, check)


def test_prefetch_budget_sweep(benchmark):
    """DESIGN §6 ablation: how far ahead should the prefetcher reach?

    Budget 0 degenerates to no prefetching; budget 1 still stalls when
    work-per-chunk is shorter than a fetch; the default (2) keeps the
    pipeline full; beyond that there is nothing left to win.
    """

    def run_with_budget(budget):
        global PREFETCH_BUDGET
        original = globals()["PREFETCH_BUDGET"]
        globals()["PREFETCH_BUDGET"] = budget
        try:
            return run_policy("reachability")
        finally:
            globals()["PREFETCH_BUDGET"] = original

    def check():
        outcomes = {budget: run_with_budget(budget) for budget in (0, 1, 2, 4)}
        rows = [[budget, stalls, total_us]
                for budget, (stalls, total_us) in sorted(outcomes.items())]
        print_table(
            "Reachability prefetch: lookahead budget sweep",
            ["budget", "demand_stalls", "total_us"],
            rows,
        )
        stalls = {b: outcomes[b][0] for b in outcomes}
        times = {b: outcomes[b][1] for b in outcomes}
        n_chunks = (N_RECORDS + RECORDS_PER_OBJECT - 1) // RECORDS_PER_OBJECT
        assert stalls[0] == n_chunks          # no prefetch: stall per chunk
        assert stalls[1] <= stalls[0]
        assert stalls[2] <= stalls[1]
        assert times[2] <= times[1] <= times[0]
        # Diminishing returns: doubling the budget past 2 buys ~nothing.
        assert times[4] >= times[2] * 0.9

    bench_check(benchmark, check)
