"""E8 / E19: the proxy-resolution ablation — eager vs lazy vs prefetched.

Paper: "This graph can be used by the system to perform prefetching
based on data identity and actual reachability instead of some proxy for
identity (e.g., adjacency, as is used today)."

Earlier revisions of this experiment drove hand-rolled prefetch picks
against raw object fetches.  Since the proxy subsystem landed
(PROXIES.md), the three strategies are real invocation arms of
:meth:`GlobalSpaceRuntime.invoke` and the ablation exercises the full
path — argument binding, the FOT reachability walk, and the
``proxy.*`` / ``prefetch.*`` evidence keys:

* ``eager``      — ``MODE_EAGER`` with the whole chain declared up
  front: every object is staged before compute starts;
* ``lazy``       — ``MODE_PROXIED`` with no budget: each dereference
  demand-resolves one object (a stall per chunk);
* ``prefetched`` — ``MODE_PROXIED`` plus a :class:`PrefetchBudget`:
  the reachability walk streams objects in under compute.

Two workloads, both over constrained (0.5 Gbps) links where staging
serializes on the holder's uplink: a pointer-linked list traversal with
a *shuffled* object layout (allocation order disagrees with link order,
so only identity-based reachability predicts the walk), and §2 sparse
model serving over a FOT-chained partition list.
"""

import random

import pytest

from repro import FunctionRegistry, GlobalRef, GlobalSpaceRuntime, build_star
from repro.core import PrefetchBudget
from repro.runtime import MODE_EAGER, MODE_PROXIED
from repro.sim import Simulator
from repro.workloads import (
    Activation,
    SparseModel,
    build_linked_list,
    build_partition_chain,
    register_proxied_serving,
    register_proxied_traversal,
)

from conftest import bench_check, print_table

SEED = 5
N_RECORDS = 128
RECORDS_PER_OBJECT = 8
WORK_PER_RECORD_US = 8.0
N_PARTITIONS = 8
ENTRIES_PER_PARTITION = 256
WORK_PER_PARTITION_US = 160.0

ARMS = ("eager", "lazy", "prefetched")
WORKLOADS = ("traversal", "inference")

N_CHUNKS = {
    "traversal": (N_RECORDS + RECORDS_PER_OBJECT - 1) // RECORDS_PER_OBJECT,
    "inference": N_PARTITIONS,
}


def _cluster():
    sim = Simulator(seed=SEED)
    net = build_star(sim, 3, prefix="n", default_bandwidth_gbps=0.5)
    registry = FunctionRegistry()
    register_proxied_traversal(registry)
    register_proxied_serving(registry)
    runtime = GlobalSpaceRuntime(net, registry)
    for name in ("n0", "n1", "n2"):
        runtime.add_node(name)
    return sim, runtime


def _traversal_setup(runtime):
    head, objects, _ = build_linked_list(
        runtime.node("n1").space, N_RECORDS, RECORDS_PER_OBJECT,
        rng=random.Random(SEED), shuffle_objects=True)
    values = {"work_us": WORK_PER_RECORD_US, "limit": N_RECORDS}
    return "traverse_list_proxied", head, objects, values


def _inference_setup(runtime):
    model = SparseModel.generate(SEED, N_PARTITIONS, ENTRIES_PER_PARTITION)
    head, objects = build_partition_chain(runtime.node("n1").space, model)
    activation = Activation.generate(random.Random(SEED + 1), 64)
    values = {"activation": activation.values, "work_us": WORK_PER_PARTITION_US}
    return "serve_partition_chain", head, objects, values


_SETUP = {"traversal": _traversal_setup, "inference": _inference_setup}


def run_arm(workload: str, arm: str, budget: PrefetchBudget = None):
    """One invocation under ``arm``; returns (latency_us, proxy counters)."""
    sim, runtime = _cluster()
    entry, head, objects, values = _SETUP[workload](runtime)
    for obj in objects:
        runtime.adopt_object("n1", obj)
    _, code_ref = runtime.create_code("n0", entry, text_size=256)
    refs = {"head": head}
    mode, prefetch = MODE_PROXIED, None
    if arm == "eager":
        # Declare the full working set so staging covers the chain.
        mode = MODE_EAGER
        for i, obj in enumerate(objects):
            if obj.oid != head.oid:
                refs[f"chunk{i}"] = GlobalRef(obj.oid, 0, "read")
    elif arm == "prefetched":
        prefetch = budget if budget is not None else PrefetchBudget(
            depth=len(objects) + 1, fanout=4, max_objects=len(objects))
    out = {}

    def driver():
        out["result"] = yield sim.spawn(runtime.invoke(
            "n0", code_ref, data_refs=refs, values=values,
            mode=mode, candidates=["n0"], prefetch=prefetch, flops=1))

    sim.run_process(driver(), name=f"ablation-{workload}-{arm}")
    consumer = runtime.node("n0")
    consumer.proxies.settle()
    return out["result"].latency_us, consumer.proxies.tracer.counters.as_dict()


@pytest.fixture(scope="module")
def outcomes():
    return {(workload, arm): run_arm(workload, arm)
            for workload in WORKLOADS for arm in ARMS}


def test_ablation_table(outcomes, benchmark):
    benchmark.pedantic(lambda: run_arm("traversal", "prefetched"),
                       rounds=3, iterations=1)
    rows = []
    for workload in WORKLOADS:
        for arm in ARMS:
            latency, counters = outcomes[(workload, arm)]
            rows.append([
                workload, arm, N_CHUNKS[workload], round(latency, 1),
                counters.get("prefetch.issued", 0),
                counters.get("proxy.resolve.prefetch_hit", 0),
                counters.get("proxy.resolve.lazy", 0),
            ])
    print_table(
        "Proxy resolution ablation (eager / lazy / prefetched arms)",
        ["workload", "arm", "chunks", "latency_us",
         "pf_issued", "pf_hits", "lazy_resolves"],
        rows,
    )


def test_lazy_arm_stalls_on_every_chunk(outcomes, benchmark):
    def check():
        for workload in WORKLOADS:
            _, counters = outcomes[(workload, "lazy")]
            # Without a budget every chunk is a demand resolution.
            assert counters.get("proxy.resolve.lazy", 0) == N_CHUNKS[workload]
            assert counters.get("prefetch.issued", 0) == 0

    bench_check(benchmark, check)


def test_prefetched_beats_eager_beats_lazy(outcomes, benchmark):
    def check():
        for workload in WORKLOADS:
            eager = outcomes[(workload, "eager")][0]
            lazy = outcomes[(workload, "lazy")][0]
            prefetched = outcomes[(workload, "prefetched")][0]
            # Staging everything serializes on the holder's uplink before
            # compute starts; the reachability walk overlaps it instead.
            assert prefetched < eager < lazy

    bench_check(benchmark, check)


def test_prefetch_covers_the_chain(outcomes, benchmark):
    def check():
        for workload in WORKLOADS:
            _, counters = outcomes[(workload, "prefetched")]
            n_chunks = N_CHUNKS[workload]
            assert counters.get("prefetch.issued", 0) == n_chunks
            # The walk keeps ahead of the consumer after the head fetch,
            # and reachability never guesses wrong on a chain.
            assert counters.get("proxy.resolve.prefetch_hit", 0) >= n_chunks - 2
            assert counters.get("prefetch.wasted", 0) == 0

    bench_check(benchmark, check)


def test_shuffled_layout_does_not_confuse_reachability(outcomes, benchmark):
    """The traversal chain is laid out shuffled: allocation order and
    link order disagree.  Identity-based prefetching doesn't care — the
    FOT successors *are* the next chunks (the paper's §3.1 point)."""

    def check():
        _, counters = outcomes[("traversal", "prefetched")]
        misses = counters.get("proxy.resolve.prefetch_miss", 0)
        hits = counters.get("proxy.resolve.prefetch_hit", 0)
        assert hits + misses == N_CHUNKS["traversal"]
        assert hits >= N_CHUNKS["traversal"] - 2

    bench_check(benchmark, check)


def test_prefetch_budget_sweep(benchmark):
    """DESIGN §6 / PROXIES.md ablation: how many objects may the walk
    pull ahead?  ``max_objects`` caps the *total* objects a walk may
    fetch, so it buys cover for a prefix of the chain: 0 degenerates to
    the lazy arm (the walk truncates immediately), small budgets convert
    a prefix of the stalls, and latency falls with coverage until the
    budget reaches the chain length."""

    def run_with_budget(max_objects):
        budget = PrefetchBudget(depth=N_CHUNKS["traversal"] + 1, fanout=4,
                                max_objects=max_objects)
        return run_arm("traversal", "prefetched", budget=budget)

    def check():
        budgets = (0, 1, 4, N_CHUNKS["traversal"])
        outcomes = {b: run_with_budget(b) for b in budgets}
        rows = [[b, counters.get("prefetch.issued", 0),
                 counters.get("proxy.resolve.prefetch_hit", 0),
                 counters.get("prefetch.depth_truncated", 0),
                 round(latency, 1)]
                for b, (latency, counters) in sorted(outcomes.items())]
        print_table(
            "Reachability prefetch: object budget sweep (traversal)",
            ["max_objects", "pf_issued", "pf_hits", "truncated", "latency_us"],
            rows,
        )
        issued = {b: outcomes[b][1].get("prefetch.issued", 0) for b in budgets}
        times = {b: outcomes[b][0] for b in budgets}
        n_chunks = N_CHUNKS["traversal"]
        assert issued[0] == 0                       # no budget, no walk
        assert outcomes[0][1].get("prefetch.depth_truncated", 0) >= 1
        assert issued[1] == 1
        assert issued[n_chunks] == n_chunks
        # Partial budgets truncate (and say so); the uncovered tail
        # falls back to demand resolution.
        assert outcomes[4][1].get("prefetch.depth_truncated", 0) == 1
        assert outcomes[n_chunks][1].get("prefetch.depth_truncated", 0) == 0
        # Latency falls monotonically as the budget covers more of the
        # chain; the full budget converts every stall it can.
        assert times[n_chunks] < times[4] < times[1] <= times[0]

    bench_check(benchmark, check)


def test_depth_budget_truncates_the_walk(benchmark):
    """A depth budget smaller than the chain cuts the walk short and
    says so (``prefetch.depth_truncated``) — the tail of the chain falls
    back to demand resolution, it is never silently dropped."""

    def check():
        budget = PrefetchBudget(depth=3, fanout=4,
                                max_objects=N_CHUNKS["traversal"])
        latency, counters = run_arm("traversal", "prefetched", budget=budget)
        n_chunks = N_CHUNKS["traversal"]
        assert counters.get("prefetch.depth_truncated", 0) == 1
        issued = counters.get("prefetch.issued", 0)
        assert 0 < issued < n_chunks
        lazy_tail = counters.get("proxy.resolve.lazy", 0)
        assert issued + lazy_tail >= n_chunks
        # Partial cover still beats no cover.
        lazy_latency, _ = run_arm("traversal", "lazy")
        assert latency < lazy_latency

    bench_check(benchmark, check)
