"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark prints the rows the paper's figure/table reports (run
with ``-s`` to see them) and asserts the *shape* claims, so a silent run
still verifies the reproduction.
"""

from typing import Iterable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one experiment's output as an aligned text table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)


def bench_check(benchmark, fn) -> None:
    """Run an assertion body under the benchmark fixture.

    ``pytest --benchmark-only`` skips tests that never touch the
    ``benchmark`` fixture; wrapping each shape check this way keeps the
    whole experiment suite active in benchmark runs while still timing
    the (cheap, fixture-cached) verification.
    """
    benchmark.pedantic(fn, rounds=1, iterations=1)
