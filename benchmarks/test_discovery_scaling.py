"""E12 / §4: the two discovery schemes at larger scales.

Paper: "in our prototype, we are building both schemes so we can compare
their efficacy at larger scales (and consider combinations of approaches
in case of limited hardware capabilities)... memory constraints may
impose limits at the switch."

Scales the rack up to a leaf-spine fabric, spreads objects across many
hosts, and measures: access RTT, broadcast load (E2E), switch identity-
table occupancy (controller), and what happens when the identity table
is too small for the object population.
"""

import pytest

from repro.core import IDAllocator, ObjectSpace
from repro.discovery import (
    E2EResolver,
    IdentityAccessor,
    ObjectHome,
    SdnController,
    advertise,
)
from repro.net import build_two_tier
from repro.sim import Simulator, Timeout, summarize

from conftest import bench_check, print_table

HOST_COUNTS = [4, 8, 16]
OBJECTS_PER_HOST = 6
ACCESSES = 60


def run_scale_point(scheme: str, n_hosts: int, seed: int = 19,
                    identity_capacity=None):
    """One scale point over a leaf-spine fabric; the first host drives
    accesses to objects spread across all the others."""
    sim = Simulator(seed=seed)
    n_leaves = max(2, n_hosts // 4)
    hosts_per_leaf = (n_hosts + n_leaves - 1) // n_leaves
    switch_kwargs = {}
    if identity_capacity is not None:
        switch_kwargs["identity_capacity"] = identity_capacity
    net = build_two_tier(sim, n_leaves=n_leaves, hosts_per_leaf=hosts_per_leaf,
                         switch_kwargs=switch_kwargs)
    host_names = [h.name for h in net.hosts][:n_hosts]
    driver_name, responder_names = host_names[0], host_names[1:]
    allocator = IDAllocator(seed=seed + 1)
    homes = {
        name: ObjectHome(net.host(name), ObjectSpace(allocator, host_name=name))
        for name in responder_names
    }
    if scheme == "controller":
        # Attach the controller to the first spine switch.
        net.add_host("controller")
        net.connect("controller", "spine0")
        controller = SdnController(net, net.host("controller"))
        accessor = IdentityAccessor(net.host(driver_name))
    else:
        controller = None
        accessor = E2EResolver(net.host(driver_name))
    rng = sim.rng
    pool = []
    for name in responder_names:
        for _ in range(OBJECTS_PER_HOST):
            obj = homes[name].space.create_object(size=1024)
            pool.append(obj.oid)
            if controller is not None:
                advertise(homes[name].host, obj.oid)
    records = []

    def driver():
        yield Timeout(5_000)  # let advertisements settle
        for _ in range(ACCESSES):
            oid = rng.choice(pool)
            record = yield sim.spawn(accessor.access(oid))
            records.append(record)
        return None

    sim.run_process(driver())
    latencies = summarize([r.latency_us for r in records if r.ok])
    broadcasts = sum(r.broadcasts for r in records)
    failures = sum(1 for r in records if not r.ok)
    max_occupancy = max(len(s.identity_table) for s in net.switches)
    install_failures = controller.install_failures if controller else 0
    return {
        "mean_us": latencies.mean,
        "p95_us": latencies.p95,
        "broadcasts": broadcasts,
        "failures": failures,
        "table_entries": max_occupancy,
        "install_failures": install_failures,
    }


@pytest.fixture(scope="module")
def grid():
    return {
        (scheme, n): run_scale_point(scheme, n)
        for scheme in ("e2e", "controller")
        for n in HOST_COUNTS
    }


def test_scaling_table(grid, benchmark):
    benchmark.pedantic(lambda: run_scale_point("e2e", 8), rounds=2,
                       iterations=1)
    rows = []
    for (scheme, n), stats in sorted(grid.items()):
        rows.append([scheme, n, stats["mean_us"], stats["p95_us"],
                     stats["broadcasts"], stats["table_entries"],
                     stats["install_failures"]])
    print_table(
        f"Discovery at scale (leaf-spine, {OBJECTS_PER_HOST} objects/host, "
        f"{ACCESSES} accesses)",
        ["scheme", "hosts", "mean_us", "p95_us", "broadcasts",
         "tbl_entries", "tbl_fails"],
        rows,
    )


def test_no_failures_at_any_scale(grid, benchmark):
    def check():
        assert all(stats["failures"] == 0 for stats in grid.values())

    bench_check(benchmark, check)


def test_e2e_broadcast_load_grows_with_population(grid, benchmark):
    def check():
        counts = [grid[("e2e", n)]["broadcasts"] for n in HOST_COUNTS]
        # More hosts -> more distinct objects in the access mix -> more
        # first-touch broadcasts.
        assert counts[-1] > counts[0]

    bench_check(benchmark, check)


def test_controller_tables_grow_with_objects(grid, benchmark):
    def check():
        for n in HOST_COUNTS:
            expected_objects = (n - 1) * OBJECTS_PER_HOST
            assert grid[("controller", n)]["table_entries"] == expected_objects

    bench_check(benchmark, check)


def test_controller_never_broadcasts(grid, benchmark):
    def check():
        assert all(grid[("controller", n)]["broadcasts"] == 0
                   for n in HOST_COUNTS)

    bench_check(benchmark, check)


def test_e2e_uses_no_switch_state(grid, benchmark):
    def check():
        # The E2E scheme's scalability argument: all state lives at the
        # hosts; switch identity tables stay empty.
        assert all(grid[("e2e", n)]["table_entries"] == 0 for n in HOST_COUNTS)

    bench_check(benchmark, check)


def test_limited_switch_memory_hits_install_wall(benchmark):
    """§4: 'memory constraints may impose limits at the switch.'  With an
    identity table smaller than the object population, the controller
    scheme starts failing installs while E2E is unaffected."""

    def check():
        starved = run_scale_point("controller", 8, identity_capacity=10)
        assert starved["install_failures"] > 0
        # Accesses still succeed: switches fall back to flooding on
        # identity miss (the default miss behaviour).
        assert starved["failures"] == 0
        e2e = run_scale_point("e2e", 8, identity_capacity=10)
        assert e2e["failures"] == 0
        assert e2e["install_failures"] == 0

    bench_check(benchmark, check)
