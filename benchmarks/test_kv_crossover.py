"""E11 / §2-§3.1: the "good RPC" case and where it stops being good.

Paper: "RPC shines in situations where decoupling in the application
meshes well with having little data movement... often manifesting as
something like a fronted key-value store service.  But call-by-small-
value is a significant constraint."

Runs an identical GET workload against an RPC-fronted store and the
object-space store, sweeping value size and re-access count, and locates
the crossover: RPC wins (or ties) for small one-shot values; references
plus local caching win as values grow and are re-read.
"""

import random

import pytest

from repro.net import build_star
from repro.rpc import RpcClient, RpcServer
from repro.runtime import GlobalSpaceRuntime
from repro.sim import Simulator
from repro.workloads import (
    ObjectKVClient,
    ObjectKVService,
    RpcKVClient,
    RpcKVService,
)

from conftest import bench_check, print_table

VALUE_SIZES = [64, 1024, 16_384, 262_144]
REACCESS = [1, 4, 16]


def run_point(value_bytes: int, accesses: int, seed: int = 17):
    """Total time to GET one key ``accesses`` times over each stack."""
    sim = Simulator(seed=seed)
    net = build_star(sim, 3, prefix="k")
    runtime = GlobalSpaceRuntime(net)
    for name in ("k0", "k1", "k2"):
        runtime.add_node(name)
    server = RpcServer(net.host("k1"))
    rpc_service = RpcKVService(server)
    obj_service = ObjectKVService(runtime, "k1", server)
    value = bytes(random.Random(seed).randrange(256) for _ in range(value_bytes))
    rpc_service.preload({"key": value})
    obj_service.put_local("key", value)
    client = RpcClient(net.host("k0"))
    rpc_client = RpcKVClient(client, "k1")
    obj_client = ObjectKVClient(runtime, "k0", client, "k1")
    timings = {}

    def proc():
        start = sim.now
        for _ in range(accesses):
            got = yield from rpc_client.get("key")
            assert len(got) == value_bytes
        timings["rpc"] = sim.now - start
        start = sim.now
        for i in range(accesses):
            # The object client caches when it expects re-access.
            got = yield from obj_client.get("key", cache=(accesses > 1))
            assert len(got) == value_bytes
        timings["object"] = sim.now - start
        return None

    sim.run_process(proc())
    return timings["rpc"], timings["object"]


@pytest.fixture(scope="module")
def grid():
    return {
        (size, n): run_point(size, n)
        for size in VALUE_SIZES
        for n in REACCESS
    }


def test_crossover_table(grid, benchmark):
    benchmark.pedantic(lambda: run_point(16_384, 4), rounds=3, iterations=1)
    rows = []
    for (size, n), (rpc_us, obj_us) in sorted(grid.items()):
        winner = "rpc" if rpc_us < obj_us else "object"
        rows.append([size, n, rpc_us, obj_us, winner])
    print_table(
        "Fronted KV store: RPC vs object space (total GET time)",
        ["value_B", "accesses", "rpc_us", "object_us", "winner"],
        rows,
    )


def test_rpc_competitive_for_small_one_shot(grid, benchmark):
    def check():
        rpc_us, obj_us = grid[(64, 1)]
        # The paper's concession: small values, one access — RPC is fine
        # (the object path pays an extra lookup round trip).
        assert rpc_us <= obj_us * 1.2

    bench_check(benchmark, check)


def test_object_space_wins_large_reaccessed_values(grid, benchmark):
    def check():
        rpc_us, obj_us = grid[(262_144, 16)]
        assert obj_us < rpc_us / 3

    bench_check(benchmark, check)


def test_reaccess_amplifies_the_gap(grid, benchmark):
    def check():
        size = 262_144
        gaps = [grid[(size, n)][0] / grid[(size, n)][1] for n in REACCESS]
        assert gaps == sorted(gaps)  # more re-access, bigger object win

    bench_check(benchmark, check)


def test_crossover_exists_along_the_size_axis(grid, benchmark):
    def check():
        # Somewhere between 64B and 256KB (at high re-access) the winner
        # flips from rpc-competitive to object-dominant.
        small_ratio = grid[(64, 16)][0] / grid[(64, 16)][1]
        large_ratio = grid[(262_144, 16)][0] / grid[(262_144, 16)][1]
        assert large_ratio > small_ratio
        assert large_ratio > 2.0

    bench_check(benchmark, check)
