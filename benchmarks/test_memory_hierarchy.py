"""E6 / §1: the latency hierarchy that motivates revisiting DSM.

Paper: "while referencing remote memory incurs 100x higher latency than
accessing local DRAM, it is 100x faster than accessing local SSD."

Regenerates the hierarchy table and shows the consequence the argument
rests on: placement decisions that prefer *remote memory* over local
storage-class alternatives.
"""

import pytest

from repro.core import DEFAULT_HIERARCHY, CostModel, LatencyHierarchy

from conftest import bench_check, print_table


def test_hierarchy_table(benchmark):
    def build():
        h = DEFAULT_HIERARCHY
        return [
            ["local DRAM", h.local_dram_us, 1.0],
            ["remote memory", h.remote_memory_us, h.remote_memory_us / h.local_dram_us],
            ["local SSD", h.local_ssd_us, h.local_ssd_us / h.local_dram_us],
        ]

    rows = benchmark(build)
    print_table(
        "Access latency hierarchy (per word/cache line)",
        ["tier", "latency_us", "x DRAM"],
        rows,
    )


def test_remote_memory_100x_dram(benchmark):
    def check():
        assert DEFAULT_HIERARCHY.remote_vs_dram == pytest.approx(100.0)

    bench_check(benchmark, check)


def test_remote_memory_100x_faster_than_ssd(benchmark):
    def check():
        assert DEFAULT_HIERARCHY.ssd_vs_remote == pytest.approx(100.0)

    bench_check(benchmark, check)


def test_working_set_placement_consequence(benchmark):
    """The argument in action: serving a 64B record 10,000 times from
    remote memory beats re-reading it from local SSD by ~100x — the
    quantitative case for reaching across the network instead of down
    the storage stack."""

    def check():
        h = DEFAULT_HIERARCHY
        accesses = 10_000
        remote_total = accesses * h.remote_memory_us
        ssd_total = accesses * h.local_ssd_us
        assert ssd_total / remote_total == pytest.approx(100.0)

    bench_check(benchmark, check)


def test_hierarchy_is_configurable_but_ordered(benchmark):
    def check():
        custom = LatencyHierarchy(local_dram_us=0.08, remote_memory_us=4.0,
                                  local_ssd_us=90.0)
        assert custom.remote_vs_dram == pytest.approx(50.0)
        model = CostModel(hierarchy=custom)
        assert model.hierarchy.ssd_vs_remote == pytest.approx(22.5)

    bench_check(benchmark, check)
