"""E0: raw throughput of the simulation kernel itself.

Not a paper experiment — the substrate's own performance envelope, so
users know what experiment sizes are practical.  Measures event
dispatch, process spawn/switch, store handoff, and a packet's full
journey through the paper topology.
"""

from repro.net import Packet, build_paper_topology
from repro.sim import Simulator, Store, Timeout


def test_event_dispatch_throughput(benchmark):
    """Plain scheduled callbacks per second."""

    def run():
        sim = Simulator(seed=1)
        count = [0]

        def tick():
            count[0] += 1

        for i in range(10_000):
            sim.schedule(float(i), tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_process_switch_throughput(benchmark):
    """Generator-process yields per second."""

    def run():
        sim = Simulator(seed=2)

        def proc():
            for _ in range(5_000):
                yield Timeout(1.0)
            return "done"

        return sim.run_process(proc())

    assert benchmark(run) == "done"


def test_store_handoff_throughput(benchmark):
    """Producer/consumer item handoffs per second."""

    def run():
        sim = Simulator(seed=3)
        store = Store(sim)
        received = [0]

        def producer():
            for i in range(2_000):
                store.put_nowait(i)
                yield Timeout(0.1)
            return None

        def consumer():
            for _ in range(2_000):
                yield store.get()
                received[0] += 1
            return None

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        return received[0]

    assert benchmark(run) == 2_000


def test_packet_delivery_throughput(benchmark):
    """Full-stack packet deliveries over the §4 topology per second."""

    def run():
        sim = Simulator(seed=4)
        net = build_paper_topology(sim)
        delivered = []
        net.host("resp1").on("ping", delivered.append)

        def driver():
            for _ in range(500):
                net.host("driver").send(Packet(kind="ping", src="driver",
                                               dst="resp1", payload_bytes=64))
                yield Timeout(5.0)
            yield Timeout(1_000.0)
            return None

        sim.run_process(driver())
        return len(delivered)

    assert benchmark(run) == 500
