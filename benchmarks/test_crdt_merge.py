"""E10 / §5: auto-merging progressive objects (CRDTs) during movement.

Paper: "we will explore how a whole-system view of object identity and
references can interface with languages to support patterns for weakly
consistent replication, such as auto-merging progressive objects like
CRDTs during data movement."

Measures gossip convergence (rounds, simulated time, bytes shipped) as
the replica count grows, and the real merge throughput of each CRDT.
"""

import pytest

from repro.consistency import GCounter, LWWRegister, ORSet, PNCounter, Replica, converge
from repro.net import build_star
from repro.sim import Simulator

from conftest import bench_check, print_table


def run_convergence(n_replicas: int, updates_per_replica: int = 10,
                    seed: int = 13):
    """Gossip n replicas of a GCounter to convergence."""
    sim = Simulator(seed=seed)
    net = build_star(sim, n_replicas)
    replicas = [Replica(net.host(f"h{i}"), GCounter(f"h{i}"))
                for i in range(n_replicas)]
    for i, replica in enumerate(replicas):
        replica.crdt.increment(updates_per_replica + i)
    rounds = sim.run_process(converge(replicas, sim.rng))
    expected = sum(updates_per_replica + i for i in range(n_replicas))
    assert all(r.crdt.value == expected for r in replicas)
    return rounds, sim.now, sum(r.bytes_sent for r in replicas)


@pytest.fixture(scope="module")
def sweep():
    return {n: run_convergence(n) for n in (2, 4, 8, 16)}


def test_convergence_table(sweep, benchmark):
    benchmark.pedantic(lambda: run_convergence(8), rounds=3, iterations=1)
    rows = [[n, rounds, total_us, total_bytes]
            for n, (rounds, total_us, total_bytes) in sorted(sweep.items())]
    print_table(
        "CRDT gossip convergence vs replica count (GCounter)",
        ["replicas", "rounds", "sim_time_us", "bytes_shipped"],
        rows,
    )


def test_rounds_grow_sublinearly(sweep, benchmark):
    def check():
        # Gossip spreads epidemically: rounds ~ O(log n), far below n.
        for n, (rounds, _, _) in sweep.items():
            assert rounds <= max(2, n // 2)

    bench_check(benchmark, check)


def test_all_sizes_converge(sweep, benchmark):
    def check():
        assert set(sweep) == {2, 4, 8, 16}  # run_convergence asserted values

    bench_check(benchmark, check)


class TestMergeThroughput:
    """Real (wall-clock) merge costs per type — the price of auto-merge
    on movement."""

    def test_gcounter_merge(self, benchmark):
        a = GCounter("a")
        b = GCounter("b")
        for i in range(500):
            a.increment(1)
            b.increment(2)

        benchmark(lambda: a.copy().merge(b))

    def test_pncounter_merge(self, benchmark):
        a = PNCounter("a")
        b = PNCounter("b")
        for i in range(500):
            a.increment(2)
            b.decrement(1)

        benchmark(lambda: a.copy().merge(b))

    def test_orset_merge(self, benchmark):
        a = ORSet("a")
        b = ORSet("b")
        for i in range(300):
            a.add(f"a{i}")
            b.add(f"b{i}")
        for i in range(0, 300, 3):
            b.remove(f"b{i}")

        benchmark(lambda: a.copy().merge(b))

    def test_lww_merge(self, benchmark):
        a = LWWRegister("a")
        b = LWWRegister("b")
        a.set("x" * 100, 5.0)
        b.set("y" * 100, 7.0)

        benchmark(lambda: a.copy().merge(b))

    def test_movement_merge_correctness(self, benchmark):
        """Merging a moved replica into a diverged local one converges to
        the union of both histories — movement never loses updates."""

        def check():
            local, moved = ORSet("local"), ORSet("moved")
            local.add("kept-local")
            moved.add("travelled")
            wire = moved.to_bytes()  # the byte-level copy of the movement
            arrived = ORSet.from_bytes(wire, "local")
            local.merge(arrived)
            assert local.elements() == {"kept-local", "travelled"}

        bench_check(benchmark, check)
