"""E7 / §5: the Dave case — heterogeneous edge devices.

Paper: "a subsequent classification request from client device Dave will
be forced to run inference on the server side even if it is equipped
with the resources to do the work locally... the optimization... in
which Dave (the powerful edge device) performs inference locally could
not be realized via any RPC mechanism."

Runs the same classification from Alice (weak, no local model) and Dave
(capable, local model) under all four invocation models and shows that
only the rendezvous model adapts per device.
"""

import math

import pytest

from repro.workloads import STRATEGIES, build_scenario, run_strategy

from conftest import bench_check, print_table


@pytest.fixture(scope="module")
def results():
    scenario = build_scenario(dave_has_local_model=True)
    collected = {}

    def runner():
        for invoker in ("alice", "dave"):
            for strategy in STRATEGIES:
                record = yield scenario.sim.spawn(
                    run_strategy(scenario, strategy, invoker=invoker))
                collected[(invoker, strategy)] = record
        return None

    scenario.sim.run_process(runner())
    collected["__expected__"] = scenario.expected_score()
    return collected


def test_heterogeneous_edge_table(results, benchmark):
    def build_rows():
        rows = []
        for (invoker, strategy), record in sorted(
                (k, v) for k, v in results.items() if isinstance(k, tuple)):
            rows.append([invoker, strategy, record.latency_us,
                         record.executed_at, record.invoker_uplink_bytes])
        return rows

    rows = benchmark(build_rows)
    print_table(
        "Per-device adaptivity: where each invocation model runs the job",
        ["invoker", "strategy", "latency_us", "ran_at", "uplink_B"],
        rows,
    )


def test_every_model_computes_the_right_answer(results, benchmark):
    def check():
        expected = results["__expected__"]
        for key, record in results.items():
            if isinstance(key, tuple):
                assert math.isclose(record.score, expected, rel_tol=1e-6)

    bench_check(benchmark, check)


def test_rpc_family_pins_dave_to_the_server(results, benchmark):
    def check():
        for strategy in ("rpc_via_alice", "rpc_direct_pull", "refrpc"):
            assert results[("dave", strategy)].executed_at != "dave"

    bench_check(benchmark, check)


def test_rendezvous_adapts_per_device(results, benchmark):
    def check():
        # Same code, same call: Alice's run lands in the cloud, Dave's on
        # his own device.
        assert results[("alice", "rendezvous")].executed_at == "carol"
        assert results[("dave", "rendezvous")].executed_at == "dave"

    bench_check(benchmark, check)


def test_dave_local_run_is_network_free(results, benchmark):
    def check():
        record = results[("dave", "rendezvous")]
        assert record.invoker_uplink_bytes == 0

    bench_check(benchmark, check)


def test_dave_local_beats_every_server_side_model(results, benchmark):
    def check():
        local = results[("dave", "rendezvous")].latency_us
        for strategy in ("rpc_via_alice", "rpc_direct_pull", "refrpc"):
            assert local < results[("dave", strategy)].latency_us / 5

    bench_check(benchmark, check)


def test_alice_still_served_by_the_cloud(results, benchmark):
    def check():
        # Adaptivity must not break the weak-device path: Alice's
        # rendezvous is at least competitive with her best RPC option.
        alice_rpc_best = min(
            results[("alice", s)].latency_us
            for s in ("rpc_via_alice", "rpc_direct_pull"))
        assert results[("alice", "rendezvous")].latency_us < alice_rpc_best

    bench_check(benchmark, check)
