"""E17 / §5: availability under a network partition.

Paper: "Perhaps foremost among them is the tension between partial
failure (inevitable in any distributed system), fault tolerance, and
mechanisms that attempt to hide the movement of computation and data."

A scripted `FaultPlan` partitions one responder away from the driver
mid-run.  Both discovery schemes access the same object population in
three measured phases — healthy, partitioned, healed — and we report
per-phase availability (fraction of accesses that succeed), mean
latency, and discovery broadcasts.  A second experiment runs the
application-level remedy: the runtime's invoke path with a replica and
retry failover keeps availability at 100% through an executor crash
window the network alone cannot hide.
"""

import pytest

from repro.core import FunctionRegistry, GlobalRef, IDAllocator, ObjectSpace
from repro.discovery import (
    SCHEME_CONTROLLER,
    SCHEME_E2E,
    E2EResolver,
    IdentityAccessor,
    ObjectHome,
    SdnController,
    advertise,
)
from repro.faults import FaultInjector, FaultPlan
from repro.net import build_paper_topology, build_star
from repro.runtime import GlobalSpaceRuntime, InvokeTimeout, RetryPolicy
from repro.sim import Simulator, Timeout

from conftest import bench_check, print_table

SEED = 17
OBJECTS_PER_RESPONDER = 4
TIMEOUT_US = 2_000.0
RETRIES = 2
# The partition window: wide enough that the whole partitioned phase
# (every access burning its full retry budget) fits inside it.
PARTITION_FROM_US = 50_000.0
PARTITION_UNTIL_US = 250_000.0
PHASES = ("healthy", "partitioned", "healed")


def _run_scheme(scheme):
    """Access the population in the three phases; return per-phase rows."""
    sim = Simulator(seed=SEED)
    net = build_paper_topology(
        sim, with_controller_host=(scheme == SCHEME_CONTROLLER))
    allocator = IDAllocator(seed=SEED + 1)
    oids = []
    for resp in ("resp1", "resp2"):
        home = ObjectHome(net.host(resp), ObjectSpace(allocator, host_name=resp))
        for _ in range(OBJECTS_PER_RESPONDER):
            obj = home.space.create_object(size=256)
            oids.append((resp, obj.oid))
    if scheme == SCHEME_CONTROLLER:
        SdnController(net, net.host("controller"))
        for resp, oid in oids:
            advertise(net.host(resp), oid)
        accessor = IdentityAccessor(net.host("driver"), timeout_us=TIMEOUT_US,
                                    max_retries=RETRIES)
    else:
        accessor = E2EResolver(net.host("driver"), timeout_us=TIMEOUT_US,
                               max_retries=RETRIES)
    # resp2 loses the driver (and resp1); an ungrouped controller host
    # keeps hearing everyone — the control plane survives the partition.
    plan = FaultPlan().partition([["driver", "resp1"], ["resp2"]],
                                 PARTITION_FROM_US, PARTITION_UNTIL_US)
    FaultInjector(net, plan).arm()

    def access_all():
        records = []
        for _, oid in oids:
            record = yield sim.spawn(accessor.access(oid))
            records.append(record)
        return records

    def driver():
        results = {}
        yield from access_all()  # warm-up: fill caches, uncounted
        results["healthy"] = yield from access_all()
        yield Timeout(PARTITION_FROM_US + 1_000.0 - sim.now)
        results["partitioned"] = yield from access_all()
        assert sim.now < PARTITION_UNTIL_US, "partitioned phase overran its window"
        yield Timeout(PARTITION_UNTIL_US + 1_000.0 - sim.now)
        results["healed"] = yield from access_all()
        return results

    results = sim.run_process(driver(), name=f"avail-{scheme}")
    rows = {}
    for phase in PHASES:
        records = results[phase]
        ok = [r for r in records if r.ok]
        rows[phase] = {
            "ok_frac": len(ok) / len(records),
            "mean_ok_us": (sum(r.latency_us for r in ok) / len(ok)) if ok else 0.0,
            "mean_failed_us": (sum(r.latency_us for r in records if not r.ok)
                               / max(1, len(records) - len(ok))),
            "broadcasts": sum(r.broadcasts for r in records),
        }
    return rows


@pytest.fixture(scope="module")
def runs():
    return {scheme: _run_scheme(scheme)
            for scheme in (SCHEME_E2E, SCHEME_CONTROLLER)}


def test_e17_regenerate(runs, benchmark):
    """Time one scheme run and print the full availability table."""
    benchmark.pedantic(lambda: _run_scheme(SCHEME_E2E), rounds=1, iterations=1)
    rows = []
    for scheme in (SCHEME_E2E, SCHEME_CONTROLLER):
        for phase in PHASES:
            row = runs[scheme][phase]
            rows.append([scheme, phase, f"{row['ok_frac']:.2f}",
                         row["mean_ok_us"], row["mean_failed_us"],
                         row["broadcasts"]])
    print_table(
        "E17: availability under partition (resp2 cut off for 200ms)",
        ["scheme", "phase", "avail", "ok_mean_us", "fail_mean_us", "bcasts"],
        rows,
    )


def test_both_schemes_fully_available_when_healthy(runs, benchmark):
    def check():
        for scheme in runs:
            assert runs[scheme]["healthy"]["ok_frac"] == 1.0

    bench_check(benchmark, check)


def test_partition_costs_exactly_the_cutoff_half(runs, benchmark):
    def check():
        """Neither scheme can mask the partition: accesses to the cut-off
        responder fail, accesses to the reachable one still succeed."""
        for scheme in runs:
            assert runs[scheme]["partitioned"]["ok_frac"] == 0.5

    bench_check(benchmark, check)


def test_failures_burn_the_full_retry_budget(runs, benchmark):
    def check():
        """Unavailability is paid in timeouts: a failed access costs its
        whole retry budget, ~100x a healthy access."""
        for scheme in runs:
            failed_us = runs[scheme]["partitioned"]["mean_failed_us"]
            assert failed_us >= RETRIES * TIMEOUT_US

    bench_check(benchmark, check)


def test_both_schemes_recover_instantly_after_heal(runs, benchmark):
    def check():
        """Healing restores full availability with no re-discovery tax:
        timeouts never invalidated state on either scheme (E2E drops a
        cache entry only on a *stale* NACK), so the healed phase runs at
        healthy-phase latency with zero broadcasts."""
        for scheme in runs:
            healed = runs[scheme]["healed"]
            assert healed["ok_frac"] == 1.0
            assert healed["broadcasts"] == 0
            assert healed["mean_ok_us"] == pytest.approx(
                runs[scheme]["healthy"]["mean_ok_us"], rel=0.05)

    bench_check(benchmark, check)


# ---------------------------------------------------------------------------
# the application-level remedy: replicas + invoke failover
# ---------------------------------------------------------------------------


def _run_invoke_availability():
    """Invocation stream through an executor crash window, with a replica."""
    sim = Simulator(seed=SEED)
    net = build_star(sim, 4, prefix="n")
    registry = FunctionRegistry()

    @registry.register("read_blob")
    def read_blob(ctx, args):
        data = yield ctx.read(args["blob"], 0, 4)
        return data

    runtime = GlobalSpaceRuntime(net, registry)
    for i in range(4):
        node = runtime.add_node(f"n{i}", speed=2.0 if i == 1 else 1.0)
        node.request_timeout_us = TIMEOUT_US
    obj = runtime.create_object("n1", size=4096)
    obj.write(0, b"SAFE")
    runtime.node("n2").space.insert(obj.clone())
    runtime.note_copy(obj.oid, "n2")
    _, code_ref = runtime.create_code("n0", "read_blob", text_size=128)
    FaultInjector(net, FaultPlan().crash_window(
        "n1", 2_000.0, 60_000.0)).arm()
    policy = RetryPolicy(max_attempts=3, deadline_us=5_000.0,
                         backoff_base_us=500.0)
    outcomes = {"ok": 0, "timeout": 0}

    def driver():
        for _ in range(20):
            try:
                result = yield sim.spawn(runtime.invoke(
                    "n0", code_ref,
                    data_refs={"blob": GlobalRef(obj.oid, 0, "read")},
                    retry=policy))
            except InvokeTimeout:
                outcomes["timeout"] += 1
            else:
                assert result.value == b"SAFE"
                outcomes["ok"] += 1
        return None

    sim.run_process(driver(), name="invoke-avail")
    counters = runtime.tracer.counters
    return {
        "outcomes": outcomes,
        "failover": counters["invoke.failover"],
        "retries": counters["invoke.retries"],
    }


@pytest.fixture(scope="module")
def invoke_run():
    return _run_invoke_availability()


def test_replica_plus_failover_keeps_invocations_available(invoke_run, benchmark):
    def check():
        """What discovery alone cannot do, the runtime can: with a replica
        and retry failover, every invocation through the crash window
        completes — availability stays at 100%."""
        assert invoke_run["outcomes"] == {"ok": 20, "timeout": 0}
        assert invoke_run["failover"] >= 1

    bench_check(benchmark, check)


def test_invoke_availability_print(invoke_run, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_table(
        "E17b: invoke availability through an executor crash window",
        ["completed", "timeouts", "failovers", "retries"],
        [[invoke_run["outcomes"]["ok"], invoke_run["outcomes"]["timeout"],
          invoke_run["failover"], invoke_run["retries"]]],
    )
