"""E15 / §3.2+§4: hierarchical identifier overlay over WAN regions.

Paper: "To scale to larger deployments, we will explore hierarchical
identifier overlay schemes" and "[we] will consider overlay networks to
layer on WAN routing."

Measures the two properties the overlay buys:

* **bounded switch state** — each region's rack switch holds identity
  entries only for locally homed objects, so total deployable objects
  scale with the number of regions instead of hitting one table's wall;
* **locality pricing** — intra-region accesses never touch the WAN;
  cross-region accesses pay exactly the gateway round trip.
"""

import pytest

from repro.core import IDAllocator, ObjectSpace
from repro.discovery import IdentityAccessor, ObjectHome
from repro.net import build_multi_region
from repro.sim import Simulator, summarize

from conftest import bench_check, print_table

OBJECTS_PER_REGION = 8
WAN_LATENCY_US = 2_000.0


def run_overlay(n_regions: int, seed: int = 67):
    """Build regions, populate objects, access local + remote mixes."""
    sim = Simulator(seed=seed)
    mr = build_multi_region(sim, n_regions=n_regions, hosts_per_region=2,
                            wan_latency_us=WAN_LATENCY_US)
    allocator = IDAllocator(seed=seed + 1)
    objects = {}
    for r in range(n_regions):
        region = f"r{r}"
        holder = f"{region}_h1"
        home = ObjectHome(mr.network.host(holder),
                          ObjectSpace(allocator, host_name=holder))
        objects[region] = []
        for _ in range(OBJECTS_PER_REGION):
            obj = home.space.create_object(size=256)
            mr.register_local_object(obj.oid, region, holder)
            objects[region].append(obj.oid)
    accessor = IdentityAccessor(mr.network.host("r0_h0"))
    local_records, remote_records = [], []

    def driver():
        for oid in objects["r0"]:
            record = yield sim.spawn(accessor.access(oid))
            local_records.append(record)
        for r in range(1, n_regions):
            for oid in objects[f"r{r}"][:3]:
                record = yield sim.spawn(accessor.access(oid))
                remote_records.append(record)
        return None

    sim.run_process(driver())
    assert all(r.ok for r in local_records + remote_records)
    max_table = max(len(s.identity_table) for s in mr.network.switches)
    return {
        "local_mean_us": summarize([r.latency_us for r in local_records]).mean,
        "remote_mean_us": summarize([r.latency_us for r in remote_records]).mean,
        "max_table_entries": max_table,
        "total_objects": n_regions * OBJECTS_PER_REGION,
    }


@pytest.fixture(scope="module")
def sweep():
    return {n: run_overlay(n) for n in (2, 3, 5)}


def test_overlay_table(sweep, benchmark):
    benchmark.pedantic(lambda: run_overlay(2), rounds=2, iterations=1)
    rows = [[n, stats["total_objects"], stats["max_table_entries"],
             stats["local_mean_us"], stats["remote_mean_us"]]
            for n, stats in sorted(sweep.items())]
    print_table(
        f"WAN overlay: per-region switch state and access locality "
        f"({OBJECTS_PER_REGION} objects/region)",
        ["regions", "objects", "max_tbl_entries", "local_us", "remote_us"],
        rows,
    )


def test_switch_state_independent_of_deployment_size(sweep, benchmark):
    def check():
        # The hierarchical claim: per-switch state is the *regional*
        # population no matter how many regions exist.
        for stats in sweep.values():
            assert stats["max_table_entries"] == OBJECTS_PER_REGION

    bench_check(benchmark, check)


def test_total_objects_scale_with_regions(sweep, benchmark):
    def check():
        totals = [sweep[n]["total_objects"] for n in sorted(sweep)]
        assert totals == sorted(totals)
        assert totals[-1] == 5 * OBJECTS_PER_REGION

    bench_check(benchmark, check)


def test_local_accesses_never_pay_wan(sweep, benchmark):
    def check():
        for stats in sweep.values():
            assert stats["local_mean_us"] < WAN_LATENCY_US / 10

    bench_check(benchmark, check)


def test_remote_accesses_pay_exactly_the_gateway_trip(sweep, benchmark):
    def check():
        for stats in sweep.values():
            # gateway->core->gateway is two WAN links each way.
            assert stats["remote_mean_us"] > 4 * WAN_LATENCY_US
            assert stats["remote_mean_us"] < 5 * WAN_LATENCY_US

    bench_check(benchmark, check)
