"""E3 / §3.2: exact-match identity-table capacity on the switch.

Paper: "With 64-bit ID fields, we could store ~1.8M exact entries and
with 128-bit IDs, we could fit ~850K.  To scale to larger deployments,
we will explore hierarchical identifier overlay schemes."

Regenerates the two reported capacities from the SRAM geometry model,
sweeps intermediate key widths, and measures real install/lookup
throughput of the match-action table.
"""

import pytest

from repro.core import IDAllocator
from repro.net import MatchActionTable, SramModel, TOFINO_SRAM

from conftest import bench_check, print_table


def test_capacity_table(benchmark):
    def build():
        return {bits: TOFINO_SRAM.capacity(bits) for bits in (32, 48, 64, 96, 128)}

    capacities = benchmark(build)
    print_table(
        "Switch exact-match capacity vs identifier width (Tofino SRAM model)",
        ["key_bits", "entries", "words/entry"],
        [[bits, cap, TOFINO_SRAM.words_per_entry(bits)]
         for bits, cap in sorted(capacities.items())],
    )


def test_paper_numbers_64_bit(benchmark):
    def check():
        assert TOFINO_SRAM.capacity(64) == pytest.approx(1_800_000, rel=0.02)

    bench_check(benchmark, check)


def test_paper_numbers_128_bit(benchmark):
    def check():
        assert TOFINO_SRAM.capacity(128) == pytest.approx(850_000, rel=0.02)

    bench_check(benchmark, check)


def test_half_width_doubles_capacity_roughly(benchmark):
    def check():
        ratio = TOFINO_SRAM.capacity(64) / TOFINO_SRAM.capacity(128)
        assert 1.8 < ratio < 2.4

    bench_check(benchmark, check)


def test_hierarchical_overlay_extends_reach(benchmark):
    """The paper's proposed mitigation: hierarchical identifiers let one
    exact entry cover a prefix of the space.  With a 64-bit 'region'
    level above full 128-bit IDs, the same SRAM addresses far more
    objects (at the price of a second lookup at the region gateway)."""

    def check():
        flat_objects = TOFINO_SRAM.capacity(128)
        # Overlay: the core switch stores 64-bit region entries; each
        # region gateway resolves its own (up to) 850K local objects.
        regions = TOFINO_SRAM.capacity(64)
        overlay_objects = regions * TOFINO_SRAM.capacity(128)
        assert overlay_objects > 1_000 * flat_objects

    bench_check(benchmark, check)


def test_install_lookup_throughput(benchmark):
    """Real (wall-clock) throughput of the table implementation."""
    allocator = IDAllocator(seed=3)
    ids = [allocator.allocate() for _ in range(2_000)]
    table = MatchActionTable("bench", key_bits=128, capacity_override=4_000)

    def churn():
        for i, oid in enumerate(ids):
            table.install(oid, i % 8)
        hits = sum(1 for oid in ids if table.lookup(oid) is not None)
        return hits

    hits = benchmark(churn)
    assert hits == len(ids)


def test_capacity_wall_is_hard(benchmark):
    def check():
        sram = SramModel(total_words=100)
        table = MatchActionTable("tiny", key_bits=64, sram=sram)
        allocator = IDAllocator(seed=4)
        installed = 0
        for _ in range(200):
            if table.try_install(allocator.allocate(), 0):
                installed += 1
        assert installed == sram.capacity(64)
        assert table.insert_failures == 200 - installed

    bench_check(benchmark, check)
