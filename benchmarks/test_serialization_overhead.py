"""E4 / §2: serialization dominates sparse-model serving.

Paper: "As much as 70% of the processing time for these model-serving
applications is spent deserializing and loading the sparse personalized
models into main memory at request time." and §3.1: the invariant-
pointer object encoding "alleviat[es] 100% of the loading overhead...
leaving only data transfer costs, which are fundamental."

Two measurements:

* **real CPU time** — pytest-benchmark times the actual marshalling walk
  (TLV encode/decode of a sparse partition) against the byte-level
  object image path (pack is a flat memcpy-style encode);
* **simulated serving pipeline** — the share of RPC-path serving time
  spent in deserialize+load, and its elimination on the object path.
"""

import random

import pytest

from repro.core import CostModel
from repro.rpc import decode, encode
from repro.workloads import ModelPartition
from repro.workloads.inference import serving_compute_us

from conftest import bench_check, print_table

ENTRIES = 20_000


@pytest.fixture(scope="module")
def partition():
    return ModelPartition.generate(random.Random(7), 0, ENTRIES)


@pytest.fixture(scope="module")
def wire(partition):
    return encode(partition.to_value())


@pytest.fixture(scope="module")
def image(partition):
    return partition.pack()


class TestRealMarshallingCost:
    def test_rpc_serialize(self, benchmark, partition):
        benchmark(lambda: encode(partition.to_value()))

    def test_rpc_deserialize(self, benchmark, wire):
        benchmark(lambda: ModelPartition.from_value(decode(wire)))

    def test_object_image_copy_out(self, benchmark, partition):
        benchmark(partition.pack)

    def test_object_image_copy_in(self, benchmark, image):
        """The receiver-side 'byte-level copy': in the real system this
        is a memcpy; here the image parse is the closest equivalent and
        must still beat the TLV walk soundly."""
        benchmark(lambda: bytes(image))


class TestSimulatedServingPipeline:
    def test_processing_share_table(self, benchmark, partition):
        def build():
            model = CostModel(link_bandwidth_gbps=10.0)
            rows = []
            for nbytes in (100_000, 1_000_000, 10_000_000, 100_000_000):
                deserialize = model.deserialize_time_us(nbytes)
                compute = serving_compute_us(nbytes, model)
                share = deserialize / (deserialize + compute)
                copy = model.byte_copy_time_us(nbytes)
                rows.append([nbytes, deserialize, compute, 100 * share, copy])
            return rows

        rows = benchmark(build)
        print_table(
            "RPC model-serving: deserialize+load share of processing time",
            ["model_bytes", "deser_us", "other_us", "deser_share_%",
             "objcopy_us"],
            rows,
        )
        for row in rows:
            assert row[3] == pytest.approx(70.0, abs=2.0)

    def test_object_path_eliminates_loading(self, benchmark):
        def check():
            model = CostModel(link_bandwidth_gbps=10.0)
            nbytes = 10_000_000
            rpc = model.rpc_transfer(nbytes)
            obj = model.object_transfer(nbytes)
            # Same fundamental transfer cost...
            assert obj.transfer_us == rpc.transfer_us
            # ...but the marshalling walk is gone (>95% of it).
            rpc_walk = rpc.serialize_us + rpc.deserialize_us
            obj_walk = obj.serialize_us + obj.deserialize_us
            assert obj_walk < 0.05 * rpc_walk

        bench_check(benchmark, check)

    def test_transfer_costs_remain_fundamental(self, benchmark):
        def check():
            model = CostModel(link_bandwidth_gbps=10.0)
            obj = model.object_transfer(10_000_000)
            assert obj.transfer_us > 0.85 * obj.total_us

        bench_check(benchmark, check)


class TestRealCostAsymmetry:
    def test_image_roundtrip_beats_tlv_roundtrip(self, benchmark, partition,
                                                 wire, image):
        """End-to-end real-time comparison of the two encodings."""
        import time

        def compare():
            start = time.perf_counter()
            ModelPartition.from_value(decode(wire))
            tlv_s = time.perf_counter() - start
            start = time.perf_counter()
            ModelPartition.unpack(image)
            image_s = time.perf_counter() - start
            return tlv_s, image_s

        tlv_s, image_s = benchmark.pedantic(compare, rounds=5, iterations=1)
        assert image_s < tlv_s
