"""E5 / Figure 1: three strategies for the rendezvous of data and compute.

Paper (Figure 1 + §3.1): (1) manual copy through the invoker, (2) an
invoker-orchestrated direct pull, (3) automatic placement and movement
by the system.  "Solid red arrows are additional infrastructure-level
tasks that are not fundamental to the requested computation."

Measures, for each strategy (plus the Wang et al. ref-RPC midpoint):
end-to-end latency, bytes pushed through the invoker's edge uplink, and
the number of placement decisions the application had to make.  Includes
the §3.1 cost-model ablation: a transfer-blind placement engine (the
pre-serialization-era estimator) against the transfer-aware one.
"""

import math

import pytest

from repro.core import NodeProfile, PlacementEngine, PlacementItem, PlacementRequest
from repro.workloads import STRATEGIES, build_scenario, run_strategy

from conftest import bench_check, print_table


@pytest.fixture(scope="module")
def results():
    scenario = build_scenario()
    collected = {}

    def runner():
        for strategy in STRATEGIES:
            record = yield scenario.sim.spawn(run_strategy(scenario, strategy))
            collected[strategy] = record
        # A second rendezvous shows the warm path (code already staged).
        record = yield scenario.sim.spawn(run_strategy(scenario, "rendezvous"))
        collected["rendezvous_warm"] = record
        return None

    scenario.sim.run_process(runner())
    collected["__expected__"] = scenario.expected_score()
    collected["__model_bytes__"] = scenario.partition_obj.size
    return collected


def test_fig1_regenerate(results, benchmark):
    def build_rows():
        order = ["rpc_via_alice", "rpc_direct_pull", "refrpc",
                 "rendezvous", "rendezvous_warm"]
        return [
            [name, results[name].latency_us, results[name].invoker_uplink_bytes,
             results[name].orchestration_steps, results[name].executed_at]
            for name in order
        ]

    rows = benchmark(build_rows)
    print_table(
        "Figure 1: rendezvous strategies (invoker = Alice)",
        ["strategy", "latency_us", "edge_uplink_B", "app_steps", "ran_at"],
        rows,
    )


def test_all_strategies_agree_on_the_answer(results, benchmark):
    def check():
        expected = results["__expected__"]
        for name in STRATEGIES:
            assert math.isclose(results[name].score, expected, rel_tol=1e-6)

    bench_check(benchmark, check)


def test_manual_copy_pays_double_through_the_edge(results, benchmark):
    def check():
        model_bytes = results["__model_bytes__"]
        assert results["rpc_via_alice"].invoker_uplink_bytes > 1.5 * model_bytes
        for name in ("rpc_direct_pull", "refrpc", "rendezvous"):
            assert results[name].invoker_uplink_bytes < model_bytes / 10

    bench_check(benchmark, check)


def test_latency_ordering(results, benchmark):
    def check():
        # (1) is the slowest; the automatic warm path beats every
        # RPC-family strategy.
        assert results["rpc_via_alice"].latency_us == max(
            results[name].latency_us for name in STRATEGIES)
        assert (results["rendezvous_warm"].latency_us
                < results["refrpc"].latency_us)
        assert (results["rendezvous_warm"].latency_us
                < results["rpc_direct_pull"].latency_us)

    bench_check(benchmark, check)


def test_orchestration_burden_vanishes(results, benchmark):
    def check():
        assert results["rpc_via_alice"].orchestration_steps == 3
        assert results["rpc_direct_pull"].orchestration_steps == 2
        assert results["refrpc"].orchestration_steps == 1
        assert results["rendezvous"].orchestration_steps == 0

    bench_check(benchmark, check)


def test_system_picks_the_idle_cloud_host(results, benchmark):
    def check():
        # Bob is overloaded; Alice never named Carol, the system did.
        assert results["rendezvous"].executed_at == "carol"

    bench_check(benchmark, check)


def test_cost_model_ablation_transfer_blind(benchmark):
    """§3.1: with serialization gone, transfer costs 'can now be included
    in cost-models... more easily.'  A transfer-blind engine ships a
    huge input to a marginally faster node; the transfer-aware engine
    stays with the data."""

    def check():
        from repro.core import GlobalRef, ObjectID

        request = PlacementRequest(
            code=PlacementItem(GlobalRef(ObjectID(1), 0, "read"), 4096, ("slowbox",)),
            inputs=(PlacementItem(GlobalRef(ObjectID(2), 0, "read"),
                                  200_000_000, ("slowbox",)),),
            invoker="slowbox",
            flops=1e7,
        )
        nodes = [NodeProfile("slowbox", speed=1.0),
                 NodeProfile("fastbox", speed=2.0)]
        distance = lambda a, b: 0 if a == b else 3
        aware = PlacementEngine(transfer_blind=False).decide(request, nodes, distance)
        blind = PlacementEngine(transfer_blind=True).decide(request, nodes, distance)
        assert aware.node == "slowbox"
        assert blind.node == "fastbox"
        # And the blind choice really is worse once transfers are priced:
        blind_true_cost = (blind.stage_in_us + blind.queue_us
                           + blind.compute_us + blind.result_return_us)
        assert blind_true_cost > aware.total_us

    bench_check(benchmark, check)
