"""E9 / §3.2: a lightweight reliable transport for memory messages.

Paper: "there will need to be a new, light-weight form of reliable
transmission, separated from the other features provided by TCP (e.g.,
slow start)."

Compares the lightweight transport (fixed window, no handshake) against
the TCP-like baseline (handshake + slow start + Tahoe collapse) on
bursts of cache-line-sized memory messages, with and without loss, and
reports completion time and per-message delivery latency.
"""

import pytest

from repro.memproto import CACHE_LINE_BYTES, LightweightTransport, TcpLikeTransport
from repro.net import build_star
from repro.sim import Simulator, Timeout, summarize

from conftest import bench_check, print_table

BURST = 64


def run_burst(transport_cls, loss_rate: float, n_messages: int = BURST,
              seed: int = 11):
    """Send a burst of memory messages; returns (completion_us, mean
    delivery latency, retransmissions)."""
    sim = Simulator(seed=seed)
    net = build_star(sim, 2, default_loss_rate=loss_rate)
    tx = transport_cls(net.host("h0"))
    rx = transport_cls(net.host("h1"))
    finished = {"at": None, "count": 0}

    def on_deliver(src, payload, size):
        finished["count"] += 1
        if finished["count"] == n_messages:
            finished["at"] = sim.now

    rx.on_deliver(on_deliver)

    def proc():
        for i in range(n_messages):
            tx.send("h1", {"seq": i}, CACHE_LINE_BYTES)
        yield Timeout(5_000_000)

    sim.run_process(proc())
    assert finished["count"] == n_messages, "burst did not complete"
    latency = summarize(tx.tracer.series.samples("transport.delivery_us"))
    return (finished["at"], latency.mean,
            tx.tracer.counters["transport.retransmit"])


@pytest.fixture(scope="module")
def outcomes():
    results = {}
    for loss in (0.0, 0.05, 0.2):
        results[("lightweight", loss)] = run_burst(LightweightTransport, loss)
        results[("tcp", loss)] = run_burst(TcpLikeTransport, loss)
    return results


def test_transport_table(outcomes, benchmark):
    benchmark.pedantic(lambda: run_burst(LightweightTransport, 0.05),
                       rounds=3, iterations=1)
    rows = []
    for (name, loss), (completion, mean_latency, retx) in sorted(outcomes.items()):
        rows.append([name, f"{loss:.0%}", completion, mean_latency, retx])
    print_table(
        f"Reliable transports: {BURST} cache-line messages",
        ["transport", "loss", "completion_us", "mean_delivery_us", "retx"],
        rows,
    )


def test_lightweight_wins_lossless_burst(outcomes, benchmark):
    def check():
        # No handshake, full window from message one.
        assert (outcomes[("lightweight", 0.0)][0]
                < outcomes[("tcp", 0.0)][0])

    bench_check(benchmark, check)


def test_lightweight_wins_under_loss(outcomes, benchmark):
    def check():
        for loss in (0.05, 0.2):
            assert (outcomes[("lightweight", loss)][0]
                    < outcomes[("tcp", loss)][0])

    bench_check(benchmark, check)


def test_both_remain_reliable_under_heavy_loss(outcomes, benchmark):
    def check():
        # run_burst asserts full delivery internally; retransmissions
        # must have occurred to achieve it.
        assert outcomes[("lightweight", 0.2)][2] > 0
        assert outcomes[("tcp", 0.2)][2] > 0

    bench_check(benchmark, check)


def test_loss_costs_more_on_tcp(outcomes, benchmark):
    def check():
        # Window collapse amplifies loss: TCP's completion time grows
        # faster with loss than the fixed-window transport's.
        lw_slowdown = (outcomes[("lightweight", 0.2)][0]
                       / outcomes[("lightweight", 0.0)][0])
        tcp_slowdown = (outcomes[("tcp", 0.2)][0]
                        / outcomes[("tcp", 0.0)][0])
        assert tcp_slowdown > lw_slowdown

    bench_check(benchmark, check)
