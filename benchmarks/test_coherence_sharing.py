"""E14 / §3.2+§5: caching with coherence vs. always-remote access.

Paper: the network's vocabulary grows coherence message types ("to
ensure exclusive access to data, upgrade access type, invalidate data"),
and §5 proposes exploring "the consistency and coherence space together"
once the network carries memory traffic.

This experiment shares one object among readers while a writer mutates
it at varying rates, and compares:

* **coherent caching** (directory MSI): reads hit the local copy until
  an invalidation; writes pay probe/invalidate rounds;
* **always-remote** (uncached load/store): every read is a network
  round trip, but writes are cheap.

The crossover in write fraction is the point of the ablation: coherence
wins read-heavy sharing and loses its advantage as invalidations churn.
"""

import pytest

from repro.core import IDAllocator
from repro.memproto import CoherenceAgent
from repro.net import build_star
from repro.sim import AllOf, Simulator, Timeout

from conftest import bench_check, print_table

N_READERS = 3
OPS_PER_READER = 40
WRITE_FRACTIONS = [0.0, 0.1, 0.3, 0.6]


def run_coherent(write_fraction: float, seed: int = 37):
    """Readers loop local reads; a writer mutates with probability
    ``write_fraction`` per reader operation slot."""
    sim = Simulator(seed=seed)
    net = build_star(sim, N_READERS + 2)
    home_map = {}
    agents = {f"h{i}": CoherenceAgent(net.host(f"h{i}"), home_map)
              for i in range(N_READERS + 2)}
    oid = IDAllocator(seed=seed).allocate()
    agents["h0"].host_object(oid, b"\x00" * 64)
    writer = agents[f"h{N_READERS + 1}"]
    rng = sim.rng

    def reader(agent):
        for _ in range(OPS_PER_READER):
            yield from agent.read(oid, 0, 8)
            yield Timeout(5.0)
        return None

    def writer_proc():
        for i in range(OPS_PER_READER):
            if rng.random() < write_fraction:
                yield from writer.write(oid, 0, i.to_bytes(8, "big"))
            yield Timeout(5.0)
        return None

    def proc():
        yield AllOf([sim.spawn(reader(agents[f"h{i}"]))
                     for i in range(1, N_READERS + 1)]
                    + [sim.spawn(writer_proc())])

    sim.run_process(proc())
    hits = sum(agents[f"h{i}"].tracer.counters["coherence.cache_hit"]
               for i in range(1, N_READERS + 1))
    return sim.now, hits


def run_uncached(write_fraction: float, seed: int = 37):
    """Same schedule, but every read is a remote read to the home."""
    sim = Simulator(seed=seed)
    net = build_star(sim, N_READERS + 2)
    home_map = {}
    agents = {f"h{i}": CoherenceAgent(net.host(f"h{i}"), home_map)
              for i in range(N_READERS + 2)}
    oid = IDAllocator(seed=seed).allocate()
    agents["h0"].host_object(oid, b"\x00" * 64)
    writer = agents[f"h{N_READERS + 1}"]
    rng = sim.rng

    def reader(agent):
        for _ in range(OPS_PER_READER):
            # Acquire then immediately surrender the copy: the price of
            # not caching, expressed in the same protocol.
            yield from agent.read(oid, 0, 8)
            yield from agent.writeback(oid)
            yield Timeout(5.0)
        return None

    def writer_proc():
        for i in range(OPS_PER_READER):
            if rng.random() < write_fraction:
                yield from writer.write(oid, 0, i.to_bytes(8, "big"))
            yield Timeout(5.0)
        return None

    def proc():
        yield AllOf([sim.spawn(reader(agents[f"h{i}"]))
                     for i in range(1, N_READERS + 1)]
                    + [sim.spawn(writer_proc())])

    sim.run_process(proc())
    return sim.now


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for fraction in WRITE_FRACTIONS:
        coherent_time, hits = run_coherent(fraction)
        uncached_time = run_uncached(fraction)
        results[fraction] = {
            "coherent_us": coherent_time,
            "uncached_us": uncached_time,
            "cache_hits": hits,
        }
    return results


def test_sharing_table(sweep, benchmark):
    benchmark.pedantic(lambda: run_coherent(0.1), rounds=3, iterations=1)
    rows = []
    total_reads = N_READERS * OPS_PER_READER
    for fraction, stats in sorted(sweep.items()):
        rows.append([f"{fraction:.0%}", stats["coherent_us"],
                     stats["uncached_us"],
                     100.0 * stats["cache_hits"] / total_reads])
    print_table(
        f"Shared-object access: MSI caching vs always-remote "
        f"({N_READERS} readers x {OPS_PER_READER} reads)",
        ["write_mix", "coherent_us", "uncached_us", "hit_rate_%"],
        rows,
    )


def test_coherence_wins_read_only_sharing(sweep, benchmark):
    def check():
        stats = sweep[0.0]
        assert stats["coherent_us"] < stats["uncached_us"]
        total_reads = N_READERS * OPS_PER_READER
        # All but each reader's first access hit the local copy.
        assert stats["cache_hits"] >= total_reads - N_READERS

    bench_check(benchmark, check)


def test_invalidation_churn_erodes_hit_rate(sweep, benchmark):
    def check():
        hits = [sweep[f]["cache_hits"] for f in WRITE_FRACTIONS]
        assert hits == sorted(hits, reverse=True)
        assert hits[-1] < hits[0] / 2

    bench_check(benchmark, check)


def test_advantage_shrinks_with_write_mix(sweep, benchmark):
    def check():
        gains = [sweep[f]["uncached_us"] - sweep[f]["coherent_us"]
                 for f in WRITE_FRACTIONS]
        assert gains[0] > gains[-1]

    bench_check(benchmark, check)


def test_all_runs_complete(sweep, benchmark):
    def check():
        assert set(sweep) == set(WRITE_FRACTIONS)

    bench_check(benchmark, check)
