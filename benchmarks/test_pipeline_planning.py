"""E16 / §5: query-planning co-design vs. invoker-mediated pipelines.

Paper: "We plan to explore placement issues through a co-design between
query planning and optimization, and network-level scheduling."

A three-stage analytics pipeline (extract a large dataset resident in
the cloud, transform, summarize) run two ways from an edge invoker:

* **planned** — :func:`repro.runtime.run_plan`: each stage placed by the
  rendezvous engine, intermediates materialized where produced and
  pulled by the next stage's executor;
* **invoker-mediated** — the RPC idiom: each stage is a separate
  invocation whose full result returns to the invoker, which re-sends it
  as the next stage's argument.

The plan keeps the pipeline's bulk off the invoker's slow access link.
"""

import pytest

from repro.core import CostModel, FunctionRegistry, GlobalRef
from repro.net.topology import Network
from repro.runtime import GlobalSpaceRuntime, Plan, PlanStep, run_plan
from repro.sim import Simulator

from conftest import bench_check, print_table

DATASET_BYTES = 200_000
EDGE_LATENCY_US = 200.0


def build(seed=97):
    sim = Simulator(seed=seed)
    net = Network(sim, default_latency_us=5.0)
    net.add_switch("edge_sw")
    net.add_switch("cloud_sw")
    net.connect("edge_sw", "cloud_sw", latency_us=50.0)
    net.add_host("edge")
    net.connect("edge", "edge_sw", latency_us=EDGE_LATENCY_US)
    for name in ("store", "compute"):
        net.add_host(name)
        net.connect(name, "cloud_sw")
    registry = FunctionRegistry()

    @registry.register("p_extract")
    def p_extract(ctx, args):
        raw = yield ctx.read(args["source"], 0, args["n"])
        return [b for b in raw if b > 128]

    @registry.register("p_transform")
    def p_transform(ctx, args):
        return sorted(set(args["rows"]))

    @registry.register("p_summarize")
    def p_summarize(ctx, args):
        rows = args["rows"]
        return {"count": len(rows), "lo": rows[0], "hi": rows[-1]}

    runtime = GlobalSpaceRuntime(
        net, registry, cost_model=CostModel(link_bandwidth_gbps=10.0))
    runtime.add_node("edge", speed=0.3)
    runtime.add_node("store")
    runtime.add_node("compute")
    dataset = runtime.create_object("store", size=DATASET_BYTES,
                                    label="dataset")
    dataset.write(0, bytes(range(256)) * (DATASET_BYTES // 256))
    code = {}
    for entry in ("p_extract", "p_transform", "p_summarize"):
        _, code[entry] = runtime.create_code("edge", entry, text_size=1024)
    return sim, runtime, dataset, code


def _steps(dataset, code):
    return [
        PlanStep("extract", code["p_extract"],
                 data_refs={"source": GlobalRef(dataset.oid, 0, "read")},
                 values={"n": DATASET_BYTES}, flops=2e5),
        PlanStep("transform", code["p_transform"],
                 inputs_from={"rows": "extract"}, flops=1e5),
        PlanStep("summarize", code["p_summarize"],
                 inputs_from={"rows": "transform"}, flops=1e4),
    ]


def run_planned(seed=97):
    sim, runtime, dataset, code = build(seed)
    edge_links = runtime.network.node("edge").links

    def proc():
        result = yield sim.spawn(run_plan(
            runtime, "edge", Plan(steps=_steps(dataset, code))))
        return result

    result = sim.run_process(proc())
    uplink = sum(link.bytes_carried for link in edge_links)
    return result.value, result.latency_us, uplink, result.executed_at


def run_invoker_mediated(seed=97):
    """Each stage's full result returns to the edge and is re-sent."""
    sim, runtime, dataset, code = build(seed)
    edge_links = runtime.network.node("edge").links
    steps = _steps(dataset, code)

    def proc():
        start = sim.now
        executed = []
        value = None
        for step in steps:
            values = dict(step.values)
            if value is not None:
                values["rows"] = value  # re-sent by value from the edge
            result = yield sim.spawn(runtime.invoke(
                "edge", step.code_ref, data_refs=step.data_refs,
                values=values, flops=step.flops))
            value = result.value
            executed.append(result.executed_at)
        return value, sim.now - start, executed

    value, latency, executed = sim.run_process(proc())
    uplink = sum(link.bytes_carried for link in edge_links)
    return value, latency, uplink, executed


@pytest.fixture(scope="module")
def outcomes():
    return {"planned": run_planned(), "mediated": run_invoker_mediated()}


def test_pipeline_table(outcomes, benchmark):
    benchmark.pedantic(run_planned, rounds=3, iterations=1)
    rows = []
    for name, (value, latency, uplink, executed) in outcomes.items():
        rows.append([name, latency, uplink, "->".join(executed)])
    print_table(
        "3-stage pipeline from the edge: planned vs invoker-mediated",
        ["strategy", "latency_us", "edge_uplink_B", "placements"],
        rows,
    )


def test_same_answer_both_ways(outcomes, benchmark):
    def check():
        assert outcomes["planned"][0] == outcomes["mediated"][0]

    bench_check(benchmark, check)


def test_planned_pipeline_is_faster(outcomes, benchmark):
    def check():
        assert outcomes["planned"][1] < outcomes["mediated"][1]

    bench_check(benchmark, check)


def test_planned_keeps_bulk_off_the_edge_link(outcomes, benchmark):
    def check():
        planned_uplink = outcomes["planned"][2]
        mediated_uplink = outcomes["mediated"][2]
        assert planned_uplink < mediated_uplink / 3

    bench_check(benchmark, check)


def test_planned_stages_run_in_the_cloud(outcomes, benchmark):
    def check():
        placements = outcomes["planned"][3]
        # Bulk stages at the data; only the summary may come home.
        assert placements[0] in ("store", "compute")
        assert placements[1] in ("store", "compute")

    bench_check(benchmark, check)
