#!/usr/bin/env python
"""Auto-merging progressive objects during movement (§5).

Four replicas of a shopping set diverge under concurrent edits and then
converge by gossip: every exchange merges CRDT state, so replicas can
move, fork, and rejoin without coordination — the weakly-consistent
replication pattern the paper wants the object layer to support.

Run:  python examples/crdt_replication.py
"""

from repro import Simulator, build_star
from repro.consistency import GCounter, ORSet, Replica, converge, gossip_round


def shopping_set_demo():
    print("== OR-Set: a replicated shopping list ==")
    sim = Simulator(seed=41)
    net = build_star(sim, 4)
    replicas = [Replica(net.host(f"h{i}"), ORSet(f"h{i}")) for i in range(4)]

    # Divergent concurrent edits.
    replicas[0].crdt.add("milk")
    replicas[0].crdt.add("eggs")
    replicas[1].crdt.add("bread")
    replicas[2].crdt.add("milk")     # concurrent duplicate add
    replicas[3].crdt.add("coffee")
    replicas[3].crdt.remove("coffee")  # changed their mind locally

    for replica in replicas:
        print(f"  {replica.host.name}: {sorted(map(str, replica.crdt.elements()))}")

    rounds = sim.run_process(converge(
        replicas, sim.rng,
        equal=lambda a, b: a.elements() == b.elements()))
    print(f"\nconverged after {rounds} gossip round(s) "
          f"({sim.now:.1f}us of simulated time):")
    final = replicas[0].crdt.elements()
    for replica in replicas:
        assert replica.crdt.elements() == final
    print(f"  everyone sees: {sorted(map(str, final))}")
    bytes_shipped = sum(r.bytes_sent for r in replicas)
    print(f"  state shipped: {bytes_shipped} bytes total")


def counter_demo():
    print("\n== G-Counter: movement never loses increments ==")
    sim = Simulator(seed=42)
    net = build_star(sim, 3)
    replicas = [Replica(net.host(f"h{i}"), GCounter(f"h{i}")) for i in range(3)]
    for i, replica in enumerate(replicas):
        replica.crdt.increment((i + 1) * 10)
    print("  local values before gossip:",
          [replica.crdt.value for replica in replicas])

    # One round at a time, watching the epidemic spread.
    for round_number in range(1, 4):
        sim.run_process(gossip_round(replicas, sim.rng))
        values = [replica.crdt.value for replica in replicas]
        print(f"  after round {round_number}: {values}")
        if len(set(values)) == 1:
            break
    assert {replica.crdt.value for replica in replicas} == {60}
    print("  total = 10 + 20 + 30 = 60 on every replica")


def main():
    shopping_set_demo()
    counter_demo()


if __name__ == "__main__":
    main()
