#!/usr/bin/env python
"""Packet subscriptions: identity-routed pub/sub in the network (§3.2).

Topics are object IDs.  Subscribing installs identity routes (multicast
port sets) in the switches; publishing sends one identity-routed packet
the switches replicate — no broker host on the data path.  Predicates
over a user-defined packet format compile to exact-match rules, with
residuals filtered at the subscriber NIC.

Run:  python examples/pubsub_telemetry.py
"""

from repro import Simulator, Timeout, build_paper_topology
from repro.core import IDAllocator
from repro.pubsub import (
    And,
    Eq,
    FormatField,
    InRange,
    PacketFormat,
    PubSubFabric,
)

TELEMETRY = PacketFormat("telemetry", [
    FormatField("sensor_kind", 16),   # 0=thermal 1=vibration 2=power
    FormatField("severity", 8),       # 0..255
    FormatField("rack", 8),
])


def main():
    sim = Simulator(seed=31)
    net = build_paper_topology(sim)
    fabric = PubSubFabric(net, TELEMETRY)
    alerts_topic = IDAllocator(seed=32).allocate()
    print(f"topic (an object ID): {alerts_topic}")

    inbox = {"resp1": [], "resp2": []}
    fabric.subscribe(
        "resp1", alerts_topic,
        lambda fields, payload: inbox["resp1"].append(fields),
        predicate=And(Eq("sensor_kind", 0), InRange("severity", 200, 255)),
    )
    fabric.subscribe(
        "resp2", alerts_topic,
        lambda fields, payload: inbox["resp2"].append(fields),
        predicate=Eq("rack", 7),
    )
    print("resp1 subscribes to: critical thermal events (kind=0, sev>=200)")
    print("resp2 subscribes to: anything from rack 7\n")

    events = [
        {"sensor_kind": 0, "severity": 250, "rack": 7},   # both
        {"sensor_kind": 0, "severity": 10, "rack": 7},    # resp2 only
        {"sensor_kind": 1, "severity": 255, "rack": 3},   # neither
        {"sensor_kind": 0, "severity": 220, "rack": 1},   # resp1 only
    ]

    def publisher():
        for event in events:
            fabric.publish("driver", alerts_topic, event, b"telemetry-blob")
        yield Timeout(2_000)

    sim.run_process(publisher())

    for name, received in inbox.items():
        print(f"{name} received {len(received)} event(s):")
        for fields in received:
            print(f"   {fields}")
    assert len(inbox["resp1"]) == 2
    assert len(inbox["resp2"]) == 2

    ruleset = fabric.compiled_rules()
    print(f"\ncompiled to {ruleset.entries_used()} exact-match switch rules "
          f"({ruleset.sram_words_used()} SRAM words) "
          f"+ {len(ruleset.residuals)} host-side residual predicate(s)")
    total = fabric.tracer.counters["pubsub.delivered"]
    filtered = fabric.tracer.counters["pubsub.residual_filtered"]
    print(f"fabric stats: {total} delivered, {filtered} filtered at the NIC")


if __name__ == "__main__":
    main()
