#!/usr/bin/env python
"""Invocation plans: the §5 query-planning co-design.

A three-stage analytics pipeline (extract -> transform -> summarize)
over a dataset living in the cloud, invoked from a weak edge device.
Run both ways:

* the RPC idiom — each stage's full result returns to the edge and is
  re-sent as the next stage's argument;
* a :class:`~repro.runtime.Plan` — the rendezvous engine places each
  stage, intermediates are materialized where they were produced, and
  the next stage's executor pulls them directly.

Run:  python examples/pipeline_analytics.py
"""

from repro import FunctionRegistry, GlobalRef, GlobalSpaceRuntime, Simulator
from repro.core import CostModel
from repro.net.topology import Network
from repro.runtime import Plan, PlanStep, run_plan

DATASET_BYTES = 200_000


def build():
    sim = Simulator(seed=113)
    net = Network(sim, default_latency_us=5.0)
    net.add_switch("edge_sw")
    net.add_switch("cloud_sw")
    net.connect("edge_sw", "cloud_sw", latency_us=50.0)
    net.add_host("edge")
    net.connect("edge", "edge_sw", latency_us=200.0)
    for name in ("store", "compute"):
        net.add_host(name)
        net.connect(name, "cloud_sw")

    registry = FunctionRegistry()

    @registry.register("ex_extract")
    def ex_extract(ctx, args):
        raw = yield ctx.read(args["source"], 0, args["n"])
        return [b for b in raw if b > 64]

    @registry.register("ex_transform")
    def ex_transform(ctx, args):
        return sorted(set(args["rows"]))

    @registry.register("ex_summarize")
    def ex_summarize(ctx, args):
        rows = args["rows"]
        return {"distinct": len(rows), "lo": rows[0], "hi": rows[-1]}

    runtime = GlobalSpaceRuntime(
        net, registry, cost_model=CostModel(link_bandwidth_gbps=10.0))
    runtime.add_node("edge", speed=0.3)
    runtime.add_node("store")
    runtime.add_node("compute")
    dataset = runtime.create_object("store", size=DATASET_BYTES,
                                    label="telemetry-archive")
    dataset.write(0, bytes(range(256)) * (DATASET_BYTES // 256))
    code = {}
    for entry in ("ex_extract", "ex_transform", "ex_summarize"):
        _, code[entry] = runtime.create_code("edge", entry, text_size=1024)
    return sim, runtime, dataset, code


def edge_bytes(runtime):
    return sum(link.bytes_carried
               for link in runtime.network.node("edge").links)


def main():
    # --- the RPC idiom ------------------------------------------------
    sim, runtime, dataset, code = build()
    start_bytes = edge_bytes(runtime)

    def mediated():
        start = sim.now
        rows = yield sim.spawn(runtime.invoke(
            "edge", code["ex_extract"],
            data_refs={"source": GlobalRef(dataset.oid, 0, "read")},
            values={"n": DATASET_BYTES}, flops=2e5))
        rows2 = yield sim.spawn(runtime.invoke(
            "edge", code["ex_transform"], values={"rows": rows.value},
            flops=1e5))
        summary = yield sim.spawn(runtime.invoke(
            "edge", code["ex_summarize"], values={"rows": rows2.value},
            flops=1e4))
        return summary.value, sim.now - start

    mediated_value, mediated_us = sim.run_process(mediated())
    mediated_uplink = edge_bytes(runtime) - start_bytes

    # --- the planned pipeline -------------------------------------------
    sim, runtime, dataset, code = build()
    start_bytes = edge_bytes(runtime)
    plan = Plan(steps=[
        PlanStep("extract", code["ex_extract"],
                 data_refs={"source": GlobalRef(dataset.oid, 0, "read")},
                 values={"n": DATASET_BYTES}, flops=2e5),
        PlanStep("transform", code["ex_transform"],
                 inputs_from={"rows": "extract"}, flops=1e5),
        PlanStep("summarize", code["ex_summarize"],
                 inputs_from={"rows": "transform"}, flops=1e4),
    ])

    def planned():
        result = yield sim.spawn(run_plan(runtime, "edge", plan))
        return result

    result = sim.run_process(planned())
    planned_uplink = edge_bytes(runtime) - start_bytes

    assert result.value == mediated_value
    print(f"dataset: {DATASET_BYTES:,d} bytes on 'store'; invoker: 'edge' "
          "behind a 200us uplink\n")
    print(f"{'strategy':18s} {'latency':>11s} {'edge uplink':>12s}  placements")
    print("-" * 66)
    print(f"{'RPC idiom':18s} {mediated_us:9.1f}us {mediated_uplink:11,d}B  "
          "(every intermediate returns to the edge)")
    print(f"{'planned pipeline':18s} {result.latency_us:9.1f}us "
          f"{planned_uplink:11,d}B  {' -> '.join(result.executed_at)}")
    print(f"\nresult: {result.value}")
    print(f"uplink bytes saved by planning: "
          f"{mediated_uplink - planned_uplink:,d} "
          f"({mediated_uplink / max(planned_uplink, 1):.0f}x less edge traffic)")
    print("\n(The crossover is real: with tiny intermediates the RPC idiom "
          "can win on\nlatency by running later stages at the edge — "
          "planning pays off as the\nintermediates grow relative to the "
          "invoker's access link.)")


if __name__ == "__main__":
    main()
