#!/usr/bin/env python
"""Confidentiality in the global space (§1/§2).

"the invoker may wish to refer to data that they lack privileges to
read" ... "users prefer local models remain local due to confidentiality
concerns."

A cloud analytics job (invoked from the cloud host 'analytics') needs a
statistic computed over Dana's private on-device model.  Dana's ACL
forbids reading the model anywhere but her device — so the reference can
be *passed* to the job, but the placement engine has exactly one legal
executor: the computation comes to the data, and only the 24-byte ref
and the small result ever cross the network.

Run:  python examples/private_models.py
"""

from repro import (
    FunctionRegistry,
    GlobalRef,
    GlobalSpaceRuntime,
    Simulator,
    build_star,
)
from repro.runtime import RuntimeError_


def main():
    sim = Simulator(seed=71)
    net = build_star(sim, 3, prefix="")
    # hosts: '0' dana's device, '1' analytics cloud, '2' another cloud
    registry = FunctionRegistry()

    @registry.register("model_norm")
    def model_norm(ctx, args):
        raw = yield ctx.read(args["model"], 0, args["nbytes"])
        return sum(raw) / len(raw)

    runtime = GlobalSpaceRuntime(net, registry)
    dana, analytics, cloud2 = "0", "1", "2"
    for name in (dana, analytics, cloud2):
        runtime.add_node(name)

    model = runtime.create_object(dana, size=4096, label="dana-private-model")
    model.write(0, bytes(range(256)) * 16)
    runtime.protect(model.oid, owner=dana, readers=set())  # local-only
    print(f"Dana's model: {model.oid.short()}..., ACL: readable only on "
          f"device {dana!r}")

    _, code_ref = runtime.create_code(analytics, "model_norm", text_size=1024)
    model_ref = GlobalRef(model.oid, 0, "read")

    # 1. The cloud cannot pull the bytes, even though it holds a reference.
    def try_steal():
        try:
            yield sim.spawn(runtime.node(analytics).remote_read(model.oid, 0, 64))
        except RuntimeError_:
            return "denied"

    print(f"\n1. analytics tries to read through the reference directly: "
          f"{sim.run_process(try_steal())}")

    # 2. The same reference, handed to invoke(): the system has one legal
    #    placement — Dana's device — and the computation goes there.
    def run_job():
        result = yield sim.spawn(runtime.invoke(
            analytics, code_ref,
            data_refs={"model": model_ref},
            values={"nbytes": 4096},
            flops=4096 * 2.0,
        ))
        return result

    result = sim.run_process(run_job())
    print(f"2. invoke(model_norm, ref) ran on device {result.executed_at!r} "
          f"and returned {result.value:.3f}")
    print(f"   bytes of model that crossed the network: 0 "
          f"(only the {24}-byte reference and the float result moved)")
    assert result.executed_at == dana

    # 3. Local execution elsewhere is also impossible — even a host that
    #    somehow obtained a replica is stopped by the ACL at read time.
    replica = model.clone()
    runtime.node(cloud2).space.insert(replica)
    runtime.note_copy(model.oid, cloud2)

    def try_local_snoop():
        try:
            yield sim.spawn(runtime.invoke(
                analytics, code_ref,
                data_refs={"model": model_ref},
                values={"nbytes": 4096},
                candidates=[cloud2]))
        except Exception:
            return "denied"

    print(f"3. forcing execution on a host holding a stolen replica: "
          f"{sim.run_process(try_local_snoop())}")
    wire_denials = sum(
        node.tracer.counters["node.read_denied"]
        + node.tracer.counters["node.fetch_denied"]
        for node in runtime.nodes.values())
    print(f"\nenforcement: {wire_denials} wire-level denial(s), "
          f"{runtime.policies.denials} local ACL denial(s)")


if __name__ == "__main__":
    main()
