#!/usr/bin/env python
"""Quickstart: the global object space in five minutes.

Walks through the core abstractions of the reproduction:

1. objects with 128-bit identity and invariant 64-bit pointers;
2. byte-level copies between hosts (no serialization walk);
3. first-class global references;
4. the rendezvous: invoking a code reference against data references
   and letting the *system* decide where the computation runs.

Run:  python examples/quickstart.py
"""

from repro import (
    FunctionRegistry,
    GlobalRef,
    GlobalSpaceRuntime,
    Simulator,
    build_star,
)
from repro.core import IDAllocator, ObjectSpace


def part_one_objects_and_pointers():
    print("== 1. Objects, identity, and invariant pointers ==")
    space = ObjectSpace(IDAllocator(seed=7), host_name="alpha")
    doc = space.create_object(size=4096, label="document")
    index = space.create_object(size=4096, label="index")
    print(f"created {doc!r}")
    print(f"created {index!r}")

    # Store a cross-object pointer: 64 bits on the wire, referencing a
    # 128-bit space, via the document's Foreign Object Table.
    slot = doc.alloc(8)
    pointer = doc.point_to(slot, index, target_offset=256)
    print(f"pointer stored at +{slot:#x}: {pointer}")
    target_oid, target_offset = doc.resolve(doc.load_pointer(slot))
    assert (target_oid, target_offset) == (index.oid, 256)
    print(f"resolves to object {target_oid.short()} offset {target_offset:#x}")
    return space, doc, index, slot


def part_two_byte_level_copy(space, doc, index, slot):
    print("\n== 2. Moving an object is a byte-level copy ==")
    wire = space.export_object(doc.oid)
    print(f"document exports as {len(wire)} bytes (header + FOT + pool)")
    other = ObjectSpace(host_name="beta")
    arrived = other.import_object(wire)
    # The pointer still works on the other host: no swizzling happened.
    target_oid, target_offset = arrived.resolve(arrived.load_pointer(slot))
    assert target_oid == index.oid
    print("imported on host beta; cross-object pointer still resolves "
          f"to {target_oid.short()}+{target_offset:#x}")


def part_three_rendezvous():
    print("\n== 3. The rendezvous: code + data references, no endpoints ==")
    sim = Simulator(seed=11)
    net = build_star(sim, 3, prefix="node")
    registry = FunctionRegistry()

    @registry.register("word_count")
    def word_count(ctx, args):
        text = yield ctx.read(args["text"], 0, args["length"])
        return len(text.split())

    runtime = GlobalSpaceRuntime(net, registry)
    for name in ("node0", "node1", "node2"):
        runtime.add_node(name)

    # A large text object lives on node2; the code object on node0.
    text = b"the quick brown fox jumps over the lazy dog " * 20_000
    blob = runtime.create_object("node2", size=len(text), label="corpus")
    blob.write(0, text)
    _, code_ref = runtime.create_code("node0", "word_count", text_size=2048)

    def main():
        result = yield sim.spawn(runtime.invoke(
            "node0", code_ref,
            data_refs={"text": GlobalRef(blob.oid, 0, "read")},
            values={"length": len(text)},
            flops=len(text) * 2.0,
        ))
        return result

    result = sim.run_process(main())
    print(f"invoked word_count from node0 with a reference to {len(text)} "
          f"bytes of text on node2")
    print(f" -> result = {result.value} words")
    print(f" -> the system ran it on {result.executed_at!r} "
          f"(costs considered: "
          f"{ {k: round(v, 1) for k, v in result.decision.considered.items()} })")
    print(f" -> bytes moved: {result.decision.bytes_moved} "
          f"(the 2 KiB code object went to the data, not the 880 KB "
          "corpus to the code)")


def main():
    space, doc, index, slot = part_one_objects_and_pointers()
    part_two_byte_level_copy(space, doc, index, slot)
    part_three_rendezvous()
    print("\nDone. See examples/distributed_inference.py for the paper's "
          "motivating scenario.")


if __name__ == "__main__":
    main()
