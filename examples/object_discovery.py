#!/usr/bin/env python
"""Object discovery: regenerate the paper's Figures 2 and 3 at the CLI.

Builds the §4 environment (three hosts, four interconnected switches)
and sweeps the two experiments:

* Figure 2 — access RTT and broadcast load as the fraction of accesses
  to *new* objects grows, under the E2E and controller schemes;
* Figure 3 — E2E access time as object movement stales the destination
  cache, plus the "network absorbs the cost" forwarding variant.

Run:  python examples/object_discovery.py
"""

from repro.discovery import (
    SCHEME_CONTROLLER,
    SCHEME_E2E,
    run_fig2_point,
    run_fig3_point,
)

SWEEP = [0, 15, 30, 45, 60, 75, 90]


def figure_two():
    print("== Figure 2: RTT vs % accesses to new objects ==")
    print(f"{'new%':>5s} | {'controller':>21s} | {'E2E':>21s} | {'bc/100':>7s}")
    print(f"{'':>5s} | {'mean':>9s} {'stdev':>9s}   | "
          f"{'mean':>9s} {'stdev':>9s}   |")
    for pct in SWEEP:
        ctl = run_fig2_point(SCHEME_CONTROLLER, pct)
        e2e = run_fig2_point(SCHEME_E2E, pct)
        print(f"{pct:5d} | {ctl.mean_rtt_us:7.1f}us {ctl.stdev_rtt_us:7.1f}us | "
              f"{e2e.mean_rtt_us:7.1f}us {e2e.stdev_rtt_us:7.1f}us | "
              f"{e2e.broadcasts_per_100:7.1f}")
    print("\nShape check (paper): controller flat at 1 RTT, zero broadcast;")
    print("E2E climbs toward 2 RTTs with broadcasts tracking the new-object %.")


def figure_three():
    print("\n== Figure 3: E2E access time as the cache goes stale ==")
    print(f"{'moved%':>6s} | {'plain E2E':>21s} | {'with forwarding':>15s}")
    for pct in SWEEP:
        plain = run_fig3_point(pct)
        forwarded = run_fig3_point(pct, use_forwarding_hints=True)
        print(f"{pct:6d} | {plain.mean_rtt_us:7.1f}us sd={plain.stdev_rtt_us:5.1f} "
              f"rtts={plain.mean_round_trips:4.2f} | {forwarded.mean_rtt_us:7.1f}us")
    print("\nShape check (paper): mean rises 1 -> 2 RTTs; variability peaks")
    print("mid-sweep and collapses once nearly every access needs 2 RTTs;")
    print("old-holder forwarding absorbs much of the cost in the network.")


def main():
    figure_two()
    figure_three()


if __name__ == "__main__":
    main()
