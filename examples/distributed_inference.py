#!/usr/bin/env python
"""The paper's motivating example (§2 + Figure 1): distributed inference.

Alice (a weak mobile device) needs a classification that requires a
sparse global-model partition stored on Bob (an overloaded cloud host)
while Carol (another cloud host) is idle.  Dave is a second edge device
powerful enough to do the inference itself — and he already holds a
local copy of the model.

Runs the classification under all four invocation models and prints the
Figure 1 comparison: who moved what, who decided where the code ran, and
what it cost.

Run:  python examples/distributed_inference.py
"""

from repro.workloads import STRATEGIES, build_scenario, run_strategy

DESCRIPTIONS = {
    "rpc_via_alice": "Fig 1(1): Alice pulls model from Bob, pushes to Carol",
    "rpc_direct_pull": "Fig 1(2): Alice tells Carol to pull from Bob",
    "refrpc": "Wang et al.: pass a reference, Carol fetches (still pinned)",
    "rendezvous": "Fig 1(3): invoke(code_ref, data_ref); system places it",
}


def run_for(scenario, invoker, repeats=1):
    results = []

    def runner():
        for strategy in STRATEGIES:
            for _ in range(repeats):
                record = yield scenario.sim.spawn(
                    run_strategy(scenario, strategy, invoker=invoker))
                results.append(record)
        return None

    scenario.sim.run_process(runner())
    return results


def print_results(title, results, model_bytes):
    print(f"\n== {title} ==")
    header = (f"{'strategy':16s} {'latency':>11s} {'edge uplink':>12s} "
              f"{'app steps':>9s}  ran at")
    print(header)
    print("-" * len(header))
    for record in results:
        print(f"{record.strategy:16s} {record.latency_us:9.1f}us "
              f"{record.invoker_uplink_bytes:11,d}B "
              f"{record.orchestration_steps:9d}  {record.executed_at}")
    print(f"(model partition is {model_bytes:,d} bytes)")


def main():
    scenario = build_scenario(dave_has_local_model=True)
    expected = scenario.expected_score()
    print("Scenario: sparse-model classification")
    print(f"  model partition: {scenario.partition_obj.size:,d} bytes on bob "
          f"(bob is running {scenario.runtime.node('bob').active_jobs} jobs)")
    print(f"  expected score: {expected:.6f}")
    print()
    for strategy, description in DESCRIPTIONS.items():
        print(f"  {strategy:16s} {description}")

    alice_results = run_for(scenario, "alice")
    print_results("Alice (weak edge device, no local model)", alice_results,
                  scenario.partition_obj.size)
    assert all(abs(r.score - expected) < 1e-6 for r in alice_results)

    dave_results = run_for(scenario, "dave")
    print_results("Dave (capable edge device, local model)", dave_results,
                  scenario.partition_obj.size)
    assert all(abs(r.score - expected) < 1e-6 for r in dave_results)

    rendezvous = {r.invoker: r for r in alice_results + dave_results
                  if r.strategy == "rendezvous"}
    print("\nThe §5 point: under the rendezvous model the *same call* ran on "
          f"{rendezvous['alice'].executed_at!r} for Alice but on "
          f"{rendezvous['dave'].executed_at!r} for Dave — the RPC variants "
          "pinned both to the server.")


if __name__ == "__main__":
    main()
