#!/usr/bin/env python
"""Remote data-structure traversal: a case RPC cannot express (§1).

A linked list of records spans many objects on a storage node.  The
invoker wants the sum of all record values.  Three ways to get it:

1. **mobile code, eager** — ship the traversal function to the data and
   stage every chunk there first (one byte-level copy each);
2. **mobile code, lazy** — ship the function; chunks are demand-read;
3. **remote reads from the invoker** — what RPC-ish decoupling forces:
   every pointer hop is a network round trip back to the invoker.

Run:  python examples/graph_traversal.py
"""

from repro import FunctionRegistry, GlobalRef, GlobalSpaceRuntime, Simulator, build_star
from repro.runtime import MODE_EAGER, MODE_LAZY
from repro.workloads import build_linked_list, register_traversal

N_RECORDS = 200
RECORDS_PER_OBJECT = 10


def build(seed=23):
    sim = Simulator(seed=seed)
    net = build_star(sim, 2, prefix="n")
    registry = FunctionRegistry()
    register_traversal(registry)
    runtime = GlobalSpaceRuntime(net, registry)
    invoker = runtime.add_node("n0")
    storage = runtime.add_node("n1")
    head, objects, values = build_linked_list(
        storage.space, N_RECORDS, RECORDS_PER_OBJECT)
    for obj in objects:
        runtime.adopt_object("n1", obj)
    _, code_ref = runtime.create_code("n0", "traverse_list", text_size=2048)
    return sim, runtime, head, code_ref, objects, sum(values)


def mobile_traversal(mode, candidates=None):
    sim, runtime, head, code_ref, objects, expected = build()
    data_refs = {"head": head}
    if mode == MODE_EAGER:
        # Eager staging wants the whole structure named up front.
        data_refs.update({
            f"chunk{i}": GlobalRef(obj.oid, 0, "read")
            for i, obj in enumerate(objects)
        })

    def main():
        result = yield sim.spawn(runtime.invoke(
            "n0", code_ref, data_refs=data_refs, mode=mode, flops=1e4,
            candidates=candidates))
        return result

    result = sim.run_process(main())
    assert result.value["sum"] == expected
    return result.latency_us, result.executed_at


def invoker_side_traversal():
    sim, runtime, head, code_ref, objects, expected = build()
    invoker = runtime.node("n0")
    from repro.workloads import LIST_NODE
    from repro.core import InvariantPointer

    def main():
        total = 0
        ref = head
        while True:
            raw = yield sim.spawn(invoker.remote_read(
                ref.oid, ref.offset, LIST_NODE.size))
            total += int.from_bytes(raw[8:16], "big")
            pointer = InvariantPointer.from_bytes(raw[0:8])
            if pointer.is_null:
                break
            if pointer.is_internal:
                ref = GlobalRef(ref.oid, pointer.offset, "read")
            else:
                target_oid, target_offset = runtime.peek_object(ref.oid).resolve(pointer)
                ref = GlobalRef(target_oid, target_offset, "read")
        assert total == expected
        return sim.now

    return sim.run_process(main())


def main():
    print(f"Traversing a {N_RECORDS}-record list spread over "
          f"{(N_RECORDS + RECORDS_PER_OBJECT - 1) // RECORDS_PER_OBJECT} "
          "objects on a remote node\n")
    eager_us, eager_at = mobile_traversal(MODE_EAGER)
    storage_us, storage_at = mobile_traversal(MODE_LAZY, candidates=["n1"])
    remote_us = invoker_side_traversal()
    print(f"batched staging (eager invoke)     : {eager_us:10.1f}us "
          f"(ran on {eager_at}; chunks fetched in parallel)")
    print(f"code shipped to storage (lazy)     : {storage_us:10.1f}us "
          f"(ran on {storage_at}; every pointer hop local)")
    print(f"pointer chasing from the invoker   : {remote_us:10.1f}us "
          f"({N_RECORDS}+ round trips)")
    best = min(eager_us, storage_us)
    print(f"\neither rendezvous form beats per-record round trips by "
          f"{remote_us / best:.0f}x — the structure (or the code) moves "
          "once instead of every record moving individually.")


if __name__ == "__main__":
    main()
